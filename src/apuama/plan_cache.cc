#include "apuama/plan_cache.h"

#include <cctype>

namespace apuama {

std::string PlanCache::NormalizeSql(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  bool pending_space = false;
  char quote = '\0';  // active literal delimiter, or 0 when outside
  for (size_t i = 0; i < sql.size(); ++i) {
    const char ch = sql[i];
    if (quote != '\0') {
      // Literal content is part of the plan ('ABC' and 'abc' are
      // different queries): copy verbatim, no tolower, no collapsing.
      out.push_back(ch);
      if (ch == quote) {
        if (i + 1 < sql.size() && sql[i + 1] == quote) {
          out.push_back(sql[++i]);  // doubled delimiter ('It''s')
        } else {
          quote = '\0';
        }
      }
      continue;
    }
    unsigned char c = static_cast<unsigned char>(ch);
    if (std::isspace(c)) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    if (ch == '\'' || ch == '"') {
      quote = ch;
      out.push_back(ch);
    } else {
      out.push_back(static_cast<char>(std::tolower(c)));
    }
  }
  return out;
}

std::shared_ptr<const PlanCache::Entry> PlanCache::Lookup(
    const std::string& key, uint64_t catalog_version) {
  std::lock_guard<std::mutex> lock(mu_);
  if (catalog_version != version_) {
    lru_.clear();
    map_.clear();
    version_ = catalog_version;
    ++misses_;
    return nullptr;
  }
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // touch
  return it->second->second;
}

void PlanCache::Insert(const std::string& key, uint64_t catalog_version,
                       std::shared_ptr<const Entry> entry) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  // A mismatched version means this entry was built against a catalog
  // the cache is not tracking — a stale reader racing a catalog bump,
  // or a build that outran every Lookup at its version. Either way,
  // drop the entry; clearing here would wipe entries freshly built at
  // the current version and regress version_. Only Lookup advances it.
  if (catalog_version != version_) return;
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(entry));
  map_[key] = lru_.begin();
  while (map_.size() > capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

}  // namespace apuama

#include "sql/analyzer.h"

#include <cassert>

namespace apuama::sql {

bool IsAggregateFunction(const std::string& name) {
  return name == "sum" || name == "avg" || name == "count" ||
         name == "min" || name == "max";
}

bool ContainsAggregate(const Expr& e) {
  if (e.kind == ExprKind::kFuncCall && IsAggregateFunction(e.func_name)) {
    return true;
  }
  for (const auto& c : e.children) {
    if (ContainsAggregate(*c)) return true;
  }
  if (e.case_else && ContainsAggregate(*e.case_else)) return true;
  // Subqueries are separate aggregation scopes; do not descend.
  return false;
}

std::vector<std::string> FromTables(const SelectStmt& s) {
  std::vector<std::string> out;
  out.reserve(s.from.size());
  for (const auto& r : s.from) out.push_back(r.table);
  return out;
}

namespace {
void CollectTables(const SelectStmt& s, bool subquery_level,
                   std::set<std::string>* all,
                   std::set<std::string>* sub_only) {
  for (const auto& r : s.from) {
    all->insert(r.table);
    if (subquery_level && sub_only != nullptr) sub_only->insert(r.table);
  }
  std::function<void(const Expr&)> walk = [&](const Expr& e) {
    if (e.subquery) {
      CollectTables(*e.subquery, /*subquery_level=*/true, all, sub_only);
    }
    for (const auto& c : e.children) walk(*c);
    if (e.case_else) walk(*e.case_else);
  };
  for (const auto& it : s.items) {
    if (it.expr) walk(*it.expr);
  }
  if (s.where) walk(*s.where);
  for (const auto& g : s.group_by) walk(*g);
  if (s.having) walk(*s.having);
  for (const auto& o : s.order_by) walk(*o.expr);
}
}  // namespace

std::set<std::string> AllReferencedTables(const SelectStmt& s) {
  std::set<std::string> all;
  CollectTables(s, false, &all, nullptr);
  return all;
}

std::set<std::string> SubqueryTables(const SelectStmt& s) {
  std::set<std::string> all, sub;
  CollectTables(s, false, &all, &sub);
  return sub;
}

bool HasSubqueries(const SelectStmt& s) {
  bool found = false;
  // VisitExprs is non-const; use the const collector instead.
  std::function<void(const Expr&)> walk = [&](const Expr& e) {
    if (e.subquery) found = true;
    for (const auto& c : e.children) walk(*c);
    if (e.case_else) walk(*e.case_else);
  };
  for (const auto& it : s.items) {
    if (it.expr) walk(*it.expr);
  }
  if (s.where) walk(*s.where);
  if (s.having) walk(*s.having);
  return found;
}

void VisitExpr(Expr* e, const std::function<void(Expr*)>& fn) {
  fn(e);
  for (auto& c : e->children) VisitExpr(c.get(), fn);
  if (e->case_else) VisitExpr(e->case_else.get(), fn);
  if (e->subquery) VisitExprs(e->subquery.get(), fn);
}

void VisitExprs(SelectStmt* s, const std::function<void(Expr*)>& fn) {
  for (auto& it : s->items) {
    if (it.expr) VisitExpr(it.expr.get(), fn);
  }
  if (s->where) VisitExpr(s->where.get(), fn);
  for (auto& g : s->group_by) VisitExpr(g.get(), fn);
  if (s->having) VisitExpr(s->having.get(), fn);
  for (auto& o : s->order_by) VisitExpr(o.expr.get(), fn);
}

namespace {

// Adds an interval to a date value (days directly; months/years via
// civil-date arithmetic, clamping the day-of-month like SQL engines do).
Value DatePlusInterval(int64_t days, const Expr& iv, int sign) {
  int64_t n = iv.interval_count * sign;
  if (iv.interval_unit == Expr::IntervalUnit::kDay) {
    return Value::Date(days + n);
  }
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  int64_t months =
      iv.interval_unit == Expr::IntervalUnit::kMonth ? n : n * 12;
  int64_t total = static_cast<int64_t>(y) * 12 + (m - 1) + months;
  int ny = static_cast<int>(total / 12);
  int nm = static_cast<int>(total % 12);
  if (nm < 0) {
    nm += 12;
    ny -= 1;
  }
  nm += 1;
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  int maxd = kDays[nm - 1];
  bool leap = (ny % 4 == 0 && ny % 100 != 0) || ny % 400 == 0;
  if (nm == 2 && leap) maxd = 29;
  if (d > maxd) d = maxd;
  return Value::Date(DaysFromCivil(ny, nm, d));
}

bool IsLiteral(const Expr& e) { return e.kind == ExprKind::kLiteral; }

}  // namespace

void FoldConstants(Expr* e) {
  for (auto& c : e->children) FoldConstants(c.get());
  if (e->case_else) FoldConstants(e->case_else.get());
  if (e->subquery) FoldConstants(e->subquery.get());

  if (e->kind == ExprKind::kUnary && e->unary_op == UnaryOp::kNegate &&
      IsLiteral(*e->children[0])) {
    const Value& v = e->children[0]->literal;
    Value folded;
    if (v.type() == ValueType::kInt64) {
      folded = Value::Int(-v.int_val());
    } else if (v.type() == ValueType::kDouble) {
      folded = Value::Double(-v.double_val());
    } else {
      return;
    }
    e->kind = ExprKind::kLiteral;
    e->literal = folded;
    e->children.clear();
    return;
  }

  if (e->kind != ExprKind::kBinary) return;
  Expr& lhs = *e->children[0];
  Expr& rhs = *e->children[1];

  // date literal +/- interval
  if ((e->binary_op == BinaryOp::kAdd || e->binary_op == BinaryOp::kSub) &&
      IsLiteral(lhs) && lhs.literal.type() == ValueType::kDate &&
      rhs.kind == ExprKind::kInterval) {
    int sign = e->binary_op == BinaryOp::kAdd ? 1 : -1;
    Value v = DatePlusInterval(lhs.literal.date_val(), rhs, sign);
    e->kind = ExprKind::kLiteral;
    e->literal = std::move(v);
    e->children.clear();
    return;
  }

  if (!IsLiteral(lhs) || !IsLiteral(rhs)) return;
  const Value& a = lhs.literal;
  const Value& b = rhs.literal;
  // Only fold numeric arithmetic; comparisons/logic fold rarely and
  // the executor handles them anyway.
  switch (e->binary_op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv: {
      if (a.is_null() || b.is_null()) return;
      auto da = a.AsDouble();
      auto db = b.AsDouble();
      if (!da.ok() || !db.ok()) return;
      const bool both_int =
          a.type() == ValueType::kInt64 && b.type() == ValueType::kInt64;
      Value folded;
      switch (e->binary_op) {
        case BinaryOp::kAdd:
          folded = both_int ? Value::Int(a.int_val() + b.int_val())
                            : Value::Double(*da + *db);
          break;
        case BinaryOp::kSub:
          folded = both_int ? Value::Int(a.int_val() - b.int_val())
                            : Value::Double(*da - *db);
          break;
        case BinaryOp::kMul:
          folded = both_int ? Value::Int(a.int_val() * b.int_val())
                            : Value::Double(*da * *db);
          break;
        case BinaryOp::kDiv:
          if (*db == 0) return;  // leave for the executor to report
          folded = Value::Double(*da / *db);
          break;
        default:
          return;
      }
      e->kind = ExprKind::kLiteral;
      e->literal = std::move(folded);
      e->children.clear();
      return;
    }
    default:
      return;
  }
}

void FoldConstants(SelectStmt* s) {
  VisitExprs(s, [](Expr*) {});  // no-op traversal keeps API symmetric
  for (auto& it : s->items) {
    if (it.expr) FoldConstants(it.expr.get());
  }
  if (s->where) FoldConstants(s->where.get());
  for (auto& g : s->group_by) FoldConstants(g.get());
  if (s->having) FoldConstants(s->having.get());
  for (auto& o : s->order_by) FoldConstants(o.expr.get());
}

std::vector<const Expr*> SplitConjuncts(const Expr* e) {
  std::vector<const Expr*> out;
  if (e == nullptr) return out;
  if (e->kind == ExprKind::kBinary && e->binary_op == BinaryOp::kAnd) {
    auto l = SplitConjuncts(e->children[0].get());
    auto r = SplitConjuncts(e->children[1].get());
    out.insert(out.end(), l.begin(), l.end());
    out.insert(out.end(), r.begin(), r.end());
    return out;
  }
  out.push_back(e);
  return out;
}

bool ExprEquals(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case ExprKind::kLiteral:
      return a.literal.type() == b.literal.type() &&
             a.literal.Compare(b.literal) == 0;
    case ExprKind::kColumnRef:
      return a.table_qualifier == b.table_qualifier &&
             a.column_name == b.column_name;
    case ExprKind::kUnary:
      if (a.unary_op != b.unary_op) return false;
      break;
    case ExprKind::kBinary:
      if (a.binary_op != b.binary_op) return false;
      break;
    case ExprKind::kLike:
      if (a.like_pattern != b.like_pattern || a.negated != b.negated) {
        return false;
      }
      break;
    case ExprKind::kFuncCall:
      if (a.func_name != b.func_name || a.star_arg != b.star_arg ||
          a.distinct != b.distinct) {
        return false;
      }
      break;
    case ExprKind::kInterval:
      return a.interval_count == b.interval_count &&
             a.interval_unit == b.interval_unit;
    case ExprKind::kStar:
      return true;
    default:
      if (a.negated != b.negated) return false;
      break;
  }
  if (a.children.size() != b.children.size()) return false;
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (!ExprEquals(*a.children[i], *b.children[i])) return false;
  }
  if ((a.case_else == nullptr) != (b.case_else == nullptr)) return false;
  if (a.case_else && !ExprEquals(*a.case_else, *b.case_else)) return false;
  if ((a.subquery == nullptr) != (b.subquery == nullptr)) return false;
  if (a.subquery) {
    // Compare subqueries textually via unparse-equality of trees.
    // Structural compare of full SelectStmt is overkill here.
    return true;  // same shape assumed when both present (conservative)
  }
  return true;
}

}  // namespace apuama::sql

// Inter-query work sharing — Fig. 3(a)-style throughput with
// IDENTICAL-template clients (the dashboard workload: every client
// runs the same query sequence), sharing off vs on, at 1/4/8/16
// concurrent clients on a fixed 4-node cluster.
//
// "Off" is the paper's configuration (every read pays full price);
// "on" enables the versioned result cache plus admission-window scan
// sharing (`SET result_cache` / `SET share_scans` mirrored into the
// simulator). Acceptance: >= 2x model throughput at 8 identical
// clients, with queries actually coalescing and the cache actually
// hitting (both counters printed).
#include <cstdio>

#include "bench/bench_util.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "workload/cluster_sim.h"
#include "workload/runner.h"

using namespace apuama;           // NOLINT
using namespace apuama::bench;    // NOLINT
using namespace apuama::workload; // NOLINT

namespace {

// One client's sequence: the paper's short read mix, repeated so the
// run is long enough for windows to overlap under load.
std::vector<std::string> TemplateSequence(int reps) {
  const int queries[] = {6, 12, 14, 1};
  std::vector<std::string> seq;
  for (int r = 0; r < reps; ++r) {
    for (int q : queries) seq.push_back(*tpch::QuerySql(q));
  }
  return seq;
}

struct RunPoint {
  double qpm = 0;
  uint64_t coalesced = 0;
  uint64_t cache_hits = 0;
};

RunPoint RunOnce(const tpch::TpchData& data, int clients, bool sharing,
                 int reps) {
  ClusterSimOptions opts;
  opts.num_nodes = 4;
  if (sharing) {
    opts.result_cache = true;
    opts.share_scans = true;
  }
  ClusterSim cluster(data, opts);
  std::vector<std::vector<std::string>> streams(
      static_cast<size_t>(clients), TemplateSequence(reps));
  StreamRunResult r = RunStreams(&cluster, streams);
  if (!r.status.ok()) {
    std::fprintf(stderr, "clients=%d sharing=%d failed: %s\n", clients,
                 sharing ? 1 : 0, r.status.ToString().c_str());
    std::exit(1);
  }
  return RunPoint{r.queries_per_minute, cluster.queries_coalesced(),
                  cluster.result_cache_hits()};
}

}  // namespace

int main() {
  const double sf = EnvDouble("APUAMA_BENCH_SF", 0.01);
  const int reps = EnvInt("APUAMA_BENCH_REPS", 3);
  std::printf(
      "Work sharing: identical-template clients, 4 nodes (SF=%g)\n", sf);
  tpch::TpchData data(tpch::DbgenOptions{.scale_factor = sf});

  Table t("Queries/minute: sharing off vs on (result cache + scan share)");
  t.SetHeader({"clients", "qpm off", "qpm on", "speedup", "coalesced",
               "cache hits"});
  std::vector<double> off_series, on_series;
  std::vector<std::string> xs;
  for (int clients : {1, 4, 8, 16}) {
    RunPoint off = RunOnce(data, clients, /*sharing=*/false, reps);
    RunPoint on = RunOnce(data, clients, /*sharing=*/true, reps);
    t.AddRow({StrFormat("%d", clients), Ratio(off.qpm), Ratio(on.qpm),
              Ratio(on.qpm / off.qpm), StrFormat("%llu", on.coalesced),
              StrFormat("%llu", on.cache_hits)});
    off_series.push_back(off.qpm);
    on_series.push_back(on.qpm);
    xs.push_back(StrFormat("%d", clients));
    std::printf("  measured %d-client configuration\n", clients);
  }
  t.Print();
  AsciiChart chart("Throughput vs identical clients (4 nodes)", xs);
  chart.AddSeries('O', "Sharing off", off_series);
  chart.AddSeries('S', "Sharing on", on_series);
  chart.Print(16, /*log_y=*/true);
  return 0;
}

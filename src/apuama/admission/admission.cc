#include "apuama/admission/admission.h"

#include <algorithm>

namespace apuama::admission {

AdmissionController::AdmissionController(Options options)
    : options_(options),
      enabled_(options.enabled),
      window_us_(options.window_base_us),
      default_slo_us_(options.default_slo_us),
      default_priority_(options.default_priority),
      queue_limit_(options.queue_limit),
      ewma_us_(std::max<int64_t>(1, options.ewma_seed_us)),
      queue_wait_hist_(std::make_unique<obs::Histogram>(
          obs::Histogram::DefaultLatencyBoundsUs())) {}

void AdmissionController::SetTenantClass(const std::string& tenant,
                                         int64_t slo_us, int priority) {
  std::lock_guard<std::mutex> lock(mu_);
  ClassTrack& track = TrackLocked(tenant);
  track.slo_us = std::max<int64_t>(1, slo_us);
  track.priority = std::clamp(priority, 0, 7);
  track.has_defaults = true;
}

void AdmissionController::set_default_slo_us(int64_t v) {
  std::lock_guard<std::mutex> lock(mu_);
  default_slo_us_ = std::max<int64_t>(1, v);
}

void AdmissionController::set_default_priority(int v) {
  std::lock_guard<std::mutex> lock(mu_);
  default_priority_ = std::clamp(v, 0, 7);
}

void AdmissionController::set_queue_limit(int v) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_limit_ = std::max(1, v);
}

AdmissionController::ClassTrack& AdmissionController::TrackLocked(
    const std::string& tenant) {
  auto it = classes_.find(tenant);
  if (it == classes_.end()) {
    it = classes_.emplace(tenant, ClassTrack{}).first;
    it->second.latency = std::make_unique<obs::Histogram>(
        obs::Histogram::DefaultLatencyBoundsUs());
  }
  return it->second;
}

void AdmissionController::ResolveLocked(const Request& request,
                                        int* priority, int64_t* slo_us) {
  int64_t class_slo = 0;
  int class_priority = -1;
  auto it = classes_.find(request.tenant);
  if (it != classes_.end() && it->second.has_defaults) {
    class_slo = it->second.slo_us;
    class_priority = it->second.priority;
  }
  *slo_us = request.slo_us > 0
                ? request.slo_us
                : (class_slo > 0 ? class_slo : default_slo_us_);
  *priority = request.priority >= 0
                  ? std::clamp(request.priority, 0, 7)
                  : (class_priority >= 0 ? class_priority
                                         : default_priority_);
}

double AdmissionController::OverloadLocked(const std::string& tenant,
                                           int64_t slo_us) const {
  // Queueing-delay estimate from recent service times: with
  // max_inflight service slots and `backlog` requests ahead, a new
  // arrival expects backlog/max_inflight service times of delay
  // before its own ~ewma of service.
  const int backlog = inflight_ + queued_;
  const int waits_ahead =
      backlog >= options_.max_inflight ? backlog - options_.max_inflight + 1
                                       : 0;
  const double est_delay =
      static_cast<double>(waits_ahead) * static_cast<double>(ewma_us_) /
      static_cast<double>(std::max(1, options_.max_inflight));
  const double predicted = est_delay + static_cast<double>(ewma_us_);
  double overload = predicted / static_cast<double>(std::max<int64_t>(1, slo_us));
  // Secondary signal: once a class's PR 5 histogram is warm, its
  // observed p99 joins the estimate — sustained SLO misses push the
  // ladder even when the backlog model looks healthy. It only feeds
  // the soft stages (window/degrade) via callers that use this value;
  // shedding keys off the model so a past burst cannot over-shed a
  // recovered gate. Histograms rotate by epoch (ClassP99Locked), so
  // a cold-start tail ages out instead of pinning the ladder.
  auto it = classes_.find(tenant);
  if (it != classes_.end()) {
    const int64_t p99 = ClassP99Locked(it->second);
    if (p99 > 0) {
      overload = std::max(overload,
                          static_cast<double>(p99) /
                              static_cast<double>(std::max<int64_t>(1, slo_us)));
    }
  }
  return overload;
}

int64_t AdmissionController::ClassP99Locked(const ClassTrack& track) const {
  if (track.latency->count() >= options_.p99_min_count) {
    return track.latency->Percentile(99.0);
  }
  if (track.prev_latency != nullptr &&
      track.prev_latency->count() >= options_.p99_min_count) {
    return track.prev_latency->Percentile(99.0);
  }
  return 0;
}

int64_t AdmissionController::LadderWindowLocked(double overload) {
  int64_t window = options_.window_base_us;
  if (overload > 1.0) {
    window = static_cast<int64_t>(
        static_cast<double>(options_.window_base_us) * overload);
    window = std::min(window, options_.window_max_us);
  }
  window_us_.store(window, std::memory_order_relaxed);
  return window;
}

AdmissionController::Ticket AdmissionController::MakeTicketLocked(
    const Waiter& w, Action action, int64_t now_us) {
  Ticket t;
  t.id = w.id;
  t.action = action;
  t.arrive_us = w.arrive_us;
  t.dispatch_us = now_us;
  t.slo_us = w.slo_us;
  t.priority = w.priority;
  t.window_us = window_us_.load(std::memory_order_relaxed);
  t.tenant = w.request.tenant;
  return t;
}

void AdmissionController::Submit(const Request& request, int64_t now_us,
                                 ReleaseFn on_release) {
  Ticket ticket;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.submitted;
    Waiter w;
    w.request = request;
    w.arrive_us = now_us;
    w.id = next_id_++;
    ResolveLocked(request, &w.priority, &w.slo_us);
    if (!enabled_.load(std::memory_order_relaxed)) {
      ++counters_.admitted;
      ++inflight_;
      window_us_.store(options_.window_base_us, std::memory_order_relaxed);
      ticket = MakeTicketLocked(w, Action::kAdmit, now_us);
    } else {
      // Hard queueing-model overload (stage 3 input) vs the softer
      // estimate that includes observed p99 (stages 1-2).
      const double soft = OverloadLocked(request.tenant, w.slo_us);
      LadderWindowLocked(soft);
      const int backlog = inflight_ + queued_;
      const int waits_ahead = backlog >= options_.max_inflight
                                  ? backlog - options_.max_inflight + 1
                                  : 0;
      const double model =
          (static_cast<double>(waits_ahead) *
               static_cast<double>(ewma_us_) /
               static_cast<double>(std::max(1, options_.max_inflight)) +
           static_cast<double>(ewma_us_)) /
          static_cast<double>(std::max<int64_t>(1, w.slo_us));
      const bool queue_full = queued_ >= queue_limit_;
      const bool hopeless =
          model > options_.shed_at * static_cast<double>(w.priority + 1);
      if (options_.allow_shed && (queue_full || hopeless)) {
        ++counters_.shed;
        ticket = MakeTicketLocked(w, Action::kShed, now_us);
      } else if (inflight_ < options_.max_inflight) {
        Action action = Action::kAdmit;
        if (options_.allow_degrade && request.degradable &&
            soft > options_.degrade_at) {
          action = Action::kDegrade;
          ++counters_.degraded;
        } else {
          ++counters_.admitted;
        }
        ++inflight_;
        ticket = MakeTicketLocked(w, action, now_us);
      } else {
        // Bounded queue: parked until a completion frees a slot.
        ++counters_.queued;
        ++queued_;
        w.on_release = std::move(on_release);
        queue_[w.priority].push_back(std::move(w));
        return;
      }
    }
  }
  on_release(ticket);
}

std::vector<std::pair<AdmissionController::Ticket,
                      AdmissionController::ReleaseFn>>
AdmissionController::DrainQueueLocked(int64_t now_us) {
  std::vector<std::pair<Ticket, ReleaseFn>> fire;
  while (queued_ > 0 && inflight_ < options_.max_inflight) {
    // Highest priority first, FIFO within a class.
    auto it = queue_.rbegin();
    while (it != queue_.rend() && it->second.empty()) ++it;
    if (it == queue_.rend()) break;  // defensive: queued_ disagreed
    Waiter w = std::move(it->second.front());
    it->second.pop_front();
    --queued_;
    const int64_t waited = now_us - w.arrive_us;
    const int64_t patience =
        w.slo_us * static_cast<int64_t>(w.priority + 1);
    if (options_.allow_shed && waited > patience) {
      // Early-exit cancellation: the queue wait already ate the SLO
      // budget — executing now wastes capacity on a guaranteed miss.
      ++counters_.cancelled;
      fire.emplace_back(MakeTicketLocked(w, Action::kShed, now_us),
                        std::move(w.on_release));
      continue;  // no inflight slot consumed
    }
    const double soft = OverloadLocked(w.request.tenant, w.slo_us);
    LadderWindowLocked(soft);
    Action action = Action::kAdmit;
    if (options_.allow_degrade && w.request.degradable &&
        soft > options_.degrade_at) {
      action = Action::kDegrade;
      ++counters_.degraded;
    } else {
      ++counters_.admitted;
    }
    ++inflight_;
    fire.emplace_back(MakeTicketLocked(w, action, now_us),
                      std::move(w.on_release));
  }
  return fire;
}

void AdmissionController::OnComplete(const Ticket& ticket, int64_t now_us,
                                     bool ok) {
  if (ticket.shed()) return;  // shed tickets never dispatched
  std::vector<std::pair<Ticket, ReleaseFn>> fire;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (inflight_ > 0) --inflight_;
    const int64_t service = std::max<int64_t>(0, now_us - ticket.dispatch_us);
    const int64_t latency = std::max<int64_t>(0, now_us - ticket.arrive_us);
    // EWMA with alpha = 1/4: stable under bursts, still tracks a
    // shifting service-time mix within a few dozen completions.
    ewma_us_ = std::max<int64_t>(1, (ewma_us_ * 3 + service) / 4);
    ClassTrack& track = TrackLocked(ticket.tenant);
    track.latency->Observe(latency);
    if (track.latency->count() >= options_.p99_epoch) {
      track.prev_latency = std::move(track.latency);
      track.latency = std::make_unique<obs::Histogram>(
          obs::Histogram::DefaultLatencyBoundsUs());
    }
    queue_wait_hist_->Observe(ticket.queue_wait_us());
    if (ok) {
      if (latency <= ticket.slo_us) {
        ++counters_.slo_met;
      } else {
        ++counters_.slo_missed;
      }
    }
    fire = DrainQueueLocked(now_us);
  }
  for (auto& [t, fn] : fire) {
    if (fn) fn(t);
  }
}

AdmissionController::Counters AdmissionController::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

int AdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

int AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

int64_t AdmissionController::ewma_service_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ewma_us_;
}

int64_t AdmissionController::ClassP99Us(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = classes_.find(tenant);
  if (it == classes_.end()) return 0;
  const int64_t warm = ClassP99Locked(it->second);
  return warm > 0 ? warm : it->second.latency->Percentile(99.0);
}

std::vector<std::pair<std::string, uint64_t>> AdmissionController::Kv()
    const {
  Counters c = counters();
  return {{"submitted", c.submitted}, {"admitted", c.admitted},
          {"degraded", c.degraded},   {"shed", c.shed},
          {"cancelled", c.cancelled}, {"queued", c.queued},
          {"slo_met", c.slo_met},     {"slo_missed", c.slo_missed}};
}

}  // namespace apuama::admission

#include "cjdbc/controller.h"

#include <set>

#include "apuama/share/query_fingerprint.h"
#include "sql/parser.h"

namespace apuama::cjdbc {

Result<RequestKind> ClassifyRequest(const std::string& sql) {
  APUAMA_ASSIGN_OR_RETURN(sql::StmtPtr stmt, sql::Parse(sql));
  switch (stmt->kind()) {
    case sql::StmtKind::kSelect:
    case sql::StmtKind::kExplain:
      return RequestKind::kRead;
    case sql::StmtKind::kInsert:
    case sql::StmtKind::kDelete:
    case sql::StmtKind::kUpdate:
      return RequestKind::kWrite;
    case sql::StmtKind::kCreateTable:
    case sql::StmtKind::kCreateIndex:
    case sql::StmtKind::kDropTable:
      return RequestKind::kDdl;
    case sql::StmtKind::kSet:
    case sql::StmtKind::kBegin:
    case sql::StmtKind::kCommit:
    case sql::StmtKind::kRollback:
      return RequestKind::kControl;
  }
  return Status::Internal("unclassifiable statement");
}

Controller::Controller(std::unique_ptr<Driver> driver, BalancePolicy policy)
    : driver_(std::move(driver)),
      balancer_(driver_->num_nodes(), policy) {
  backends_.resize(static_cast<size_t>(driver_->num_nodes()));
  for (int i = 0; i < driver_->num_nodes(); ++i) {
    auto conn = driver_->Connect(i);
    if (conn.ok()) {
      backends_[static_cast<size_t>(i)].conn = std::move(conn).value();
    } else {
      backends_[static_cast<size_t>(i)].enabled = false;
    }
  }
  sharing_ = driver_->work_sharing();
  share::ScanShareManager::Options gate_options;
  if (sharing_ != nullptr) {
    gate_options.window_us = sharing_->admission_window_us();
  }
  gate_ = std::make_unique<share::ScanShareManager>(gate_options);
}

Result<engine::QueryResult> Controller::Execute(const std::string& sql) {
  APUAMA_ASSIGN_OR_RETURN(RequestKind kind, ClassifyRequest(sql));
  switch (kind) {
    case RequestKind::kRead: {
      scheduler_.NoteRead();
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.reads;
      }
      return ExecuteRead(sql);
    }
    case RequestKind::kWrite: {
      uint64_t seq = 0;
      Scheduler::WriteTicket ticket = scheduler_.BeginWrite(&seq);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.writes;
      }
      return ExecuteBroadcast(sql);
    }
    case RequestKind::kDdl: {
      uint64_t seq = 0;
      Scheduler::WriteTicket ticket = scheduler_.BeginWrite(&seq);
      return ExecuteBroadcast(sql);
    }
    case RequestKind::kControl:
      // Session control is broadcast so all replicas stay in step.
      return ExecuteBroadcast(sql);
  }
  return Status::Internal("unreachable");
}

Result<engine::QueryResult> Controller::ExecuteRead(const std::string& sql) {
  if (sharing_ != nullptr &&
      (sharing_->sharing_enabled() || sharing_->cache_enabled())) {
    return ExecuteSharedRead(sql);
  }
  return ExecuteReadDirect(sql, std::nullopt);
}

Result<engine::QueryResult> Controller::ExecuteReadDirect(
    const std::string& sql, std::optional<uint64_t> affinity) {
  int node = balancer_.Acquire(affinity);
  if (!backends_[static_cast<size_t>(node)].enabled) {
    // Balancer picked a disabled backend: fail over to the first
    // enabled one, bypassing balancer bookkeeping for this request.
    balancer_.Release(node);
    for (int i = 0; i < num_backends(); ++i) {
      if (backends_[static_cast<size_t>(i)].enabled) {
        return backends_[static_cast<size_t>(i)].conn->Execute(sql);
      }
    }
    return Status::Unavailable("no backend available");
  }
  auto result = backends_[static_cast<size_t>(node)].conn->Execute(sql);
  balancer_.Release(node);
  return result;
}

Result<engine::QueryResult> Controller::ExecuteSharedRead(
    const std::string& sql) {
  auto tables = share::ReadTableSet(sql);
  if (!tables.has_value()) {
    return ExecuteReadDirect(sql, std::nullopt);
  }
  const std::string fingerprint = share::NormalizeSql(sql);
  const uint64_t affinity = share::FingerprintHash(fingerprint);
  // Cache hits are served immediately — no window, no backend.
  if (sharing_->cache_enabled()) {
    if (auto hit = sharing_->CacheLookup(fingerprint)) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.result_cache_hits;
      return *hit;
    }
  }
  if (!sharing_->sharing_enabled()) {
    // Cache-only mode: solo execution under a fill ticket (the ticket
    // snapshots write epochs BEFORE the read runs, so a racing write
    // rejects the fill).
    auto ticket = sharing_->CacheBeginFill(fingerprint, *tables);
    auto result = ExecuteReadDirect(sql, affinity);
    if (result.ok() && ticket.has_value()) {
      sharing_->CacheInsert(
          *ticket, std::make_shared<engine::QueryResult>(*result));
    }
    return result;
  }
  // Admission gate: rendezvous with concurrent reads over the same
  // table set. Non-leaders block until the leader publishes.
  std::string group;
  for (const auto& t : *tables) group += t + ",";
  auto admission = gate_->Admit(group, fingerprint, sql);
  if (!admission.leader) {
    sharing_->NoteCoalesced(1);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.queries_coalesced;
    }
    return gate_->Await(admission);
  }
  std::vector<std::string> batch = gate_->WaitWindow(admission);
  std::vector<Result<engine::QueryResult>> results =
      ExecuteGateBatch(batch, affinity);
  if (batch.size() > 1) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.shared_batches;
  }
  Result<engine::QueryResult> own = results[admission.index];
  gate_->Publish(admission, std::move(results));
  return own;
}

std::vector<Result<engine::QueryResult>> Controller::ExecuteGateBatch(
    const std::vector<std::string>& sqls, uint64_t affinity) {
  // Snapshot cache epochs per entry before anything executes.
  std::vector<std::optional<share::ResultCache::FillTicket>> tickets(
      sqls.size());
  if (sharing_->cache_enabled()) {
    for (size_t i = 0; i < sqls.size(); ++i) {
      if (auto tables = share::ReadTableSet(sqls[i])) {
        tickets[i] = sharing_->CacheBeginFill(
            share::NormalizeSql(sqls[i]), *tables);
      }
    }
  }
  std::vector<Result<engine::QueryResult>> results;
  int node = balancer_.Acquire(affinity);
  if (!backends_[static_cast<size_t>(node)].enabled) {
    balancer_.Release(node);
    int fallback = -1;
    for (int i = 0; i < num_backends(); ++i) {
      if (backends_[static_cast<size_t>(i)].enabled) {
        fallback = i;
        break;
      }
    }
    if (fallback < 0) {
      for (size_t i = 0; i < sqls.size(); ++i) {
        results.push_back(Status::Unavailable("no backend available"));
      }
      return results;
    }
    results = backends_[static_cast<size_t>(fallback)].conn->ExecuteShared(
        sqls);
  } else {
    results = backends_[static_cast<size_t>(node)].conn->ExecuteShared(sqls);
    balancer_.Release(node);
  }
  for (size_t i = 0; i < results.size() && i < tickets.size(); ++i) {
    if (results[i].ok() && tickets[i].has_value()) {
      sharing_->CacheInsert(
          *tickets[i], std::make_shared<engine::QueryResult>(*results[i]));
    }
  }
  return results;
}

Result<engine::QueryResult> Controller::ExecuteBroadcast(
    const std::string& sql) {
  // Append to the recovery log first: disabled (or newly failing)
  // backends will replay from here when they rejoin. Caller holds the
  // write ticket, so the log order IS the replica write order.
  size_t log_index;
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    recovery_log_.push_back(sql);
    log_index = recovery_log_.size();
  }
  engine::QueryResult last;
  bool any = false;
  Status first_error = Status::OK();
  for (auto& b : backends_) {
    if (!b.enabled) continue;
    auto r = b.conn->Execute(sql);
    if (r.ok()) {
      last = std::move(r).value();
      b.applied_up_to = log_index;
      any = true;
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.broadcast_statements;
      continue;
    }
    if (r.status().code() == StatusCode::kUnavailable) {
      // Failure detection: drop the backend from rotation; the write
      // succeeds on the survivors and the log covers the rejoin.
      b.enabled = false;
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.failovers;
      continue;
    }
    if (first_error.ok()) first_error = r.status();
  }
  APUAMA_RETURN_NOT_OK(first_error);
  if (!any) return Status::Unavailable("no backend available");
  return last;
}

void Controller::SetBackendEnabled(int node_id, bool enabled) {
  if (node_id >= 0 && node_id < num_backends()) {
    backends_[static_cast<size_t>(node_id)].enabled = enabled;
  }
}

bool Controller::IsBackendEnabled(int node_id) const {
  if (node_id < 0 || node_id >= num_backends()) return false;
  return backends_[static_cast<size_t>(node_id)].enabled;
}

Status Controller::RecoverBackend(int node_id) {
  if (node_id < 0 || node_id >= num_backends()) {
    return Status::InvalidArgument("bad node id");
  }
  Backend& b = backends_[static_cast<size_t>(node_id)];
  // Hold the write order while replaying so no new broadcast
  // interleaves with recovery (C-JDBC quiesces writes the same way).
  uint64_t seq = 0;
  Scheduler::WriteTicket ticket = scheduler_.BeginWrite(&seq);
  size_t target;
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    target = recovery_log_.size();
  }
  while (b.applied_up_to < target) {
    std::string stmt;
    {
      std::lock_guard<std::mutex> lock(log_mu_);
      stmt = recovery_log_[b.applied_up_to];
    }
    APUAMA_RETURN_NOT_OK(b.conn->ExecuteRecovery(stmt).status());
    ++b.applied_up_to;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.recovered_statements;
  }
  b.enabled = true;
  return Status::OK();
}

}  // namespace apuama::cjdbc

// Shared test helpers.
#ifndef APUAMA_TESTS_TEST_UTIL_H_
#define APUAMA_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/query_result.h"
#include "types/value.h"

namespace apuama::testutil {

/// Shared SET-knob validation check: every accepted value round-trips
/// and every rejected value fails InvalidArgument with a message that
/// names the knob and lists what it accepts ("expected ..."), so a
/// mistyped value teaches its own spelling. `exec` runs one SQL
/// statement on the system under test.
inline void ExpectKnobValidation(
    const std::function<Status(const std::string&)>& exec,
    const std::string& knob, const std::vector<std::string>& accepted,
    const std::vector<std::string>& rejected) {
  for (const auto& v : accepted) {
    Status s = exec("set " + knob + " = " + v);
    EXPECT_TRUE(s.ok()) << knob << " = " << v << ": " << s.ToString();
  }
  for (const auto& v : rejected) {
    Status s = exec("set " + knob + " = " + v);
    ASSERT_FALSE(s.ok()) << knob << " = " << v << " was accepted";
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
    EXPECT_NE(s.message().find(knob), std::string::npos)
        << "rejection does not name the knob: " << s.ToString();
    EXPECT_NE(s.message().find("expected"), std::string::npos)
        << "rejection does not list accepted values: " << s.ToString();
  }
}

inline bool ValuesClose(const Value& a, const Value& b, double tol = 1e-6) {
  if (a.is_null() || b.is_null()) return a.is_null() == b.is_null();
  if (a.type() == ValueType::kDouble || b.type() == ValueType::kDouble) {
    auto da = a.AsDouble();
    auto db = b.AsDouble();
    if (!da.ok() || !db.ok()) return false;
    double scale = std::max({1.0, std::fabs(*da), std::fabs(*db)});
    return std::fabs(*da - *db) <= tol * scale;
  }
  return a.Compare(b) == 0;
}

inline bool RowsClose(const Row& a, const Row& b, double tol = 1e-6) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!ValuesClose(a[i], b[i], tol)) return false;
  }
  return true;
}

/// Asserts two results are equal up to floating-point tolerance and
/// (optionally) row order. Rows are canonically sorted when
/// `ignore_order` — use for queries whose ORDER BY leaves ties.
inline void ExpectResultsEqual(const engine::QueryResult& expected,
                               const engine::QueryResult& actual,
                               bool ignore_order = false,
                               double tol = 1e-6) {
  ASSERT_EQ(expected.num_columns(), actual.num_columns());
  ASSERT_EQ(expected.num_rows(), actual.num_rows())
      << "expected:\n"
      << expected.ToString(8) << "actual:\n"
      << actual.ToString(8);
  std::vector<Row> e = expected.rows, a = actual.rows;
  if (ignore_order) {
    auto cmp = [](const Row& x, const Row& y) {
      for (size_t i = 0; i < std::min(x.size(), y.size()); ++i) {
        int c = x[i].Compare(y[i]);
        if (c != 0) return c < 0;
      }
      return x.size() < y.size();
    };
    std::sort(e.begin(), e.end(), cmp);
    std::sort(a.begin(), a.end(), cmp);
  }
  for (size_t i = 0; i < e.size(); ++i) {
    EXPECT_TRUE(RowsClose(e[i], a[i], tol))
        << "row " << i << " differs:\n expected: "
        << [&] {
             std::string s;
             for (const auto& v : e[i]) s += v.ToString() + "\t";
             return s;
           }()
        << "\n actual:   " << [&] {
             std::string s;
             for (const auto& v : a[i]) s += v.ToString() + "\t";
             return s;
           }();
  }
}

/// Asserts two results are bit-identical: same columns, same row
/// order, and every value's exact printed representation matches (no
/// floating-point tolerance — used by the parallel-determinism tests,
/// where "close" is not good enough).
inline void ExpectResultsIdentical(const engine::QueryResult& expected,
                                   const engine::QueryResult& actual) {
  ASSERT_EQ(expected.column_names, actual.column_names);
  ASSERT_EQ(expected.num_rows(), actual.num_rows())
      << "expected:\n"
      << expected.ToString(8) << "actual:\n"
      << actual.ToString(8);
  for (size_t i = 0; i < expected.rows.size(); ++i) {
    ASSERT_EQ(expected.rows[i].size(), actual.rows[i].size()) << "row " << i;
    for (size_t j = 0; j < expected.rows[i].size(); ++j) {
      const Value& e = expected.rows[i][j];
      const Value& a = actual.rows[i][j];
      EXPECT_TRUE(e.is_null() == a.is_null() &&
                  (e.is_null() || e.Compare(a) == 0) &&
                  e.ToString() == a.ToString())
          << "row " << i << " col " << j << ": expected " << e.ToString()
          << " actual " << a.ToString();
    }
  }
}

}  // namespace apuama::testutil

#endif  // APUAMA_TESTS_TEST_UTIL_H_

#include "apuama/svp_rewriter.h"

#include <functional>
#include <set>
#include <unordered_map>

#include "common/string_util.h"
#include "sql/analyzer.h"
#include "sql/unparse.h"

namespace apuama {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;
using sql::SelectStmt;

std::vector<std::pair<int64_t, int64_t>> SvpPlan::MakeIntervals(
    int nodes) const {
  // Delegates to the catalog's interval math so SVP carving and
  // physical fragment boundaries agree key-for-key.
  return KeyIntervals(domain_min_, domain_max_, nodes);
}

std::string SvpPlan::SubquerySql(int64_t lo, int64_t hi) {
  for (const Patch& p : patches_) {
    p.literal->literal = Value::Int(p.is_lo ? lo : hi);
  }
  return sql::UnparseSelect(*template_);
}

void RemapSelectTables(
    SelectStmt* stmt,
    const std::vector<std::pair<std::string, std::string>>& table_map) {
  for (auto& ref : stmt->from) {
    for (const auto& [from, to] : table_map) {
      if (EqualsIgnoreCase(ref.table, from)) {
        if (ref.alias.empty()) ref.alias = ref.table;
        ref.table = to;
        break;
      }
    }
  }
  std::function<void(Expr*)> walk = [&](Expr* e) {
    if (e == nullptr) return;
    if (e->subquery) RemapSelectTables(e->subquery.get(), table_map);
    for (auto& c : e->children) walk(c.get());
    walk(e->case_else.get());
  };
  for (auto& it : stmt->items) walk(it.expr.get());
  walk(stmt->where.get());
  walk(stmt->having.get());
}

std::string SvpPlan::SubquerySqlMapped(
    int64_t lo, int64_t hi,
    const std::vector<std::pair<std::string, std::string>>& table_map) {
  for (const Patch& p : patches_) {
    p.literal->literal = Value::Int(p.is_lo ? lo : hi);
  }
  std::unique_ptr<SelectStmt> mapped = template_->Clone();
  RemapSelectTables(mapped.get(), table_map);
  return sql::UnparseSelect(*mapped);
}

namespace {

// Preorder expression collection over a statement. Expr::Clone and
// SelectStmt::Clone preserve structure, so running this over an
// original and its clone yields positionally parallel node lists —
// the basis for remapping patch pointers in SvpPlan::Clone.
void CollectStmtExprs(const SelectStmt* s, std::vector<const Expr*>* out);

void CollectExprTree(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  out->push_back(e);
  for (const auto& c : e->children) CollectExprTree(c.get(), out);
  CollectExprTree(e->case_else.get(), out);
  if (e->subquery) CollectStmtExprs(e->subquery.get(), out);
}

void CollectStmtExprs(const SelectStmt* s, std::vector<const Expr*>* out) {
  if (s == nullptr) return;
  for (const auto& it : s->items) CollectExprTree(it.expr.get(), out);
  CollectExprTree(s->where.get(), out);
  for (const auto& g : s->group_by) CollectExprTree(g.get(), out);
  CollectExprTree(s->having.get(), out);
  for (const auto& o : s->order_by) CollectExprTree(o.expr.get(), out);
}

}  // namespace

SvpPlan SvpPlan::Clone() const {
  SvpPlan out;
  out.composition_sql_ = composition_sql_;
  out.merge_ = merge_;
  out.domain_min_ = domain_min_;
  out.domain_max_ = domain_max_;
  out.pred_min_ = pred_min_;
  out.pred_max_ = pred_max_;
  out.fact_tables_ = fact_tables_;
  out.all_tables_ = all_tables_;
  out.template_ = template_->Clone();

  std::vector<const Expr*> orig_nodes;
  std::vector<const Expr*> copy_nodes;
  CollectStmtExprs(template_.get(), &orig_nodes);
  CollectStmtExprs(out.template_.get(), &copy_nodes);
  std::unordered_map<const Expr*, size_t> index;
  index.reserve(orig_nodes.size());
  for (size_t i = 0; i < orig_nodes.size(); ++i) index[orig_nodes[i]] = i;
  out.patches_.reserve(patches_.size());
  for (const Patch& p : patches_) {
    auto it = index.find(p.literal);
    if (it == index.end()) continue;  // unreachable by construction
    out.patches_.push_back(
        Patch{const_cast<Expr*>(copy_nodes[it->second]), p.is_lo});
  }
  return out;
}

namespace {

// ---------------------------------------------------------------------------
// Range-predicate injection
// ---------------------------------------------------------------------------

// Appends `qualifier.column >= 0 AND qualifier.column < 0` to the
// statement's WHERE and records the two literal nodes for patching.
void AddRangePredicate(SelectStmt* stmt, const std::string& qualifier,
                       const std::string& column,
                       std::vector<SvpPlan::Patch>* patches) {
  ExprPtr lo_lit = sql::MakeLiteral(Value::Int(0));
  ExprPtr hi_lit = sql::MakeLiteral(Value::Int(0));
  Expr* lo_raw = lo_lit.get();
  Expr* hi_raw = hi_lit.get();
  ExprPtr ge = sql::MakeBinary(BinaryOp::kGtEq,
                               sql::MakeColumnRef(qualifier, column),
                               std::move(lo_lit));
  ExprPtr lt = sql::MakeBinary(BinaryOp::kLt,
                               sql::MakeColumnRef(qualifier, column),
                               std::move(hi_lit));
  stmt->where = sql::AndCombine(std::move(stmt->where), std::move(ge));
  stmt->where = sql::AndCombine(std::move(stmt->where), std::move(lt));
  patches->push_back(SvpPlan::Patch{lo_raw, true});
  patches->push_back(SvpPlan::Patch{hi_raw, false});
}

// A fact reference constrained at some scope: binding name + VPA.
struct ConstrainedRef {
  std::string binding;
  std::string column;
};

// Does `sub` contain an equality conjunct between `inner_binding`'s
// VPA column and the VPA of some constrained outer reference?
bool CorrelatedOnKey(const SelectStmt& sub, const std::string& inner_binding,
                     const std::string& inner_column,
                     const std::vector<ConstrainedRef>& outer_refs) {
  auto is_inner_vpa = [&](const Expr& e) {
    return e.kind == ExprKind::kColumnRef &&
           EqualsIgnoreCase(e.column_name, inner_column) &&
           (e.table_qualifier.empty() ||
            EqualsIgnoreCase(e.table_qualifier, inner_binding));
  };
  auto is_outer_vpa = [&](const Expr& e) {
    if (e.kind != ExprKind::kColumnRef) return false;
    for (const auto& ref : outer_refs) {
      if (EqualsIgnoreCase(e.column_name, ref.column) &&
          (e.table_qualifier.empty() ||
           EqualsIgnoreCase(e.table_qualifier, ref.binding))) {
        return true;
      }
    }
    return false;
  };
  for (const Expr* c : sql::SplitConjuncts(sub.where.get())) {
    if (c->kind != ExprKind::kBinary || c->binary_op != BinaryOp::kEq) {
      continue;
    }
    const Expr& l = *c->children[0];
    const Expr& r = *c->children[1];
    if ((is_inner_vpa(l) && is_outer_vpa(r)) ||
        (is_inner_vpa(r) && is_outer_vpa(l))) {
      return true;
    }
  }
  return false;
}

// Recursively constrains fact references in `stmt` and all its
// subqueries. `outer_refs` are constrained refs visible from
// enclosing scopes (for correlation checks).
Status ConstrainStatement(SelectStmt* stmt, const DataCatalog& catalog,
                          const VirtualPartitionSpace* space,
                          std::vector<ConstrainedRef> outer_refs,
                          std::vector<SvpPlan::Patch>* patches,
                          bool is_subquery) {
  std::vector<ConstrainedRef> local_refs;
  for (const auto& ref : stmt->from) {
    const VirtualPartitionSpace* s = catalog.SpaceForTable(ref.table);
    if (s == nullptr) continue;
    if (s != space) {
      return Status::Unsupported(
          "query spans multiple partition spaces");
    }
    const auto* member = s->FindMember(ref.table);
    if (is_subquery &&
        !CorrelatedOnKey(*stmt, ref.binding(), member->column, outer_refs)) {
      return Status::Unsupported(
          "subquery references fact table " + ref.table +
          " without an equality correlation on the partition key");
    }
    local_refs.push_back(ConstrainedRef{ref.binding(), member->column});
    AddRangePredicate(stmt, ref.binding(), member->column, patches);
  }
  if (!is_subquery && local_refs.empty()) {
    return Status::Unsupported("query references no partitionable table");
  }

  // Recurse into EXISTS / IN subqueries in the WHERE clause.
  std::vector<ConstrainedRef> visible = outer_refs;
  visible.insert(visible.end(), local_refs.begin(), local_refs.end());
  Status status = Status::OK();
  std::function<void(Expr*)> walk = [&](Expr* e) {
    if (!status.ok()) return;
    if (e->subquery) {
      Status s = ConstrainStatement(e->subquery.get(), catalog, space,
                                    visible, patches, /*is_subquery=*/true);
      if (!s.ok()) status = s;
      return;  // inner subqueries handled by recursion above
    }
    for (auto& c : e->children) walk(c.get());
    if (e->case_else) walk(e->case_else.get());
  };
  if (stmt->where) walk(stmt->where.get());
  if (stmt->having && status.ok()) walk(stmt->having.get());
  return status;
}

// ---------------------------------------------------------------------------
// Aggregate decomposition
// ---------------------------------------------------------------------------

struct AggPartial {
  const Expr* node = nullptr;   // aggregate node in the *work* tree
  ExprPtr merge_expr;           // composition-side replacement
  // Sub-query select items this aggregate contributes (1 or 2).
  std::vector<sql::SelectItem> sub_items;
};

// colref helper
ExprPtr Col(const std::string& name) { return sql::MakeColumnRef("", name); }

ExprPtr SumOf(const std::string& name) {
  std::vector<ExprPtr> args;
  args.push_back(Col(name));
  return sql::MakeFuncCall("sum", std::move(args));
}

// Builds the partial columns + merge expression for one aggregate.
Result<AggPartial> DecomposeAggregate(const Expr& agg, size_t index) {
  AggPartial out;
  out.node = &agg;
  const std::string base = StrFormat("a%zu", index);
  const std::string& f = agg.func_name;
  if (agg.distinct) {
    return Status::Unsupported(f + "(DISTINCT) is not decomposable for SVP");
  }
  auto make_item = [&](ExprPtr e, const std::string& alias) {
    sql::SelectItem item;
    item.expr = std::move(e);
    item.alias = alias;
    return item;
  };
  if (f == "sum" || f == "count" || f == "min" || f == "max") {
    // Partial column: the same aggregate evaluated per node.
    sql::SelectItem item;
    item.expr = agg.Clone();
    item.alias = base;
    out.sub_items.push_back(std::move(item));
    if (f == "sum" || f == "count") {
      out.merge_expr = SumOf(base);
    } else {
      std::vector<ExprPtr> args;
      args.push_back(Col(base));
      out.merge_expr = sql::MakeFuncCall(f, std::move(args));
    }
    return out;
  }
  if (f == "avg") {
    // avg(e) -> sum(e) AS a<k>s, count(e) AS a<k>c (paper section 2),
    // merged as a NULL-guarded quotient.
    ExprPtr sum_clone = agg.Clone();
    sum_clone->func_name = "sum";
    ExprPtr cnt_clone = agg.Clone();
    cnt_clone->func_name = "count";
    out.sub_items.push_back(make_item(std::move(sum_clone), base + "s"));
    out.sub_items.push_back(make_item(std::move(cnt_clone), base + "c"));

    // CASE WHEN sum(a<k>c) = 0 THEN NULL
    //      ELSE sum(a<k>s) / sum(a<k>c) END
    auto guard = std::make_unique<Expr>();
    guard->kind = ExprKind::kCase;
    guard->children.push_back(sql::MakeBinary(
        BinaryOp::kEq, SumOf(base + "c"), sql::MakeLiteral(Value::Int(0))));
    guard->children.push_back(sql::MakeLiteral(Value::Null()));
    guard->case_else = sql::MakeBinary(BinaryOp::kDiv, SumOf(base + "s"),
                                       SumOf(base + "c"));
    out.merge_expr = std::move(guard);
    return out;
  }
  return Status::Unsupported("aggregate " + f + " is not decomposable");
}

// Substitutes a work-tree expression for the composition query:
// aggregate nodes -> merge expressions; subtrees equal to a GROUP BY
// expression -> g<j> column refs. Any remaining column reference means
// the expression is not computable from partials -> Unsupported.
Result<ExprPtr> SubstituteForComposition(
    const Expr& e,
    const std::unordered_map<const Expr*, const AggPartial*>& agg_map,
    const std::vector<ExprPtr>& group_exprs) {
  auto it = agg_map.find(&e);
  if (it != agg_map.end()) return it->second->merge_expr->Clone();
  for (size_t j = 0; j < group_exprs.size(); ++j) {
    if (sql::ExprEquals(e, *group_exprs[j])) {
      return Col(StrFormat("g%zu", j));
    }
  }
  switch (e.kind) {
    case ExprKind::kColumnRef:
      return Status::Unsupported(
          "output expression references non-grouped column " +
          e.column_name);
    case ExprKind::kExists:
    case ExprKind::kInSubquery:
    case ExprKind::kScalarSubquery:
      return Status::Unsupported("subquery in output expression");
    default:
      break;
  }
  ExprPtr clone = e.Clone();
  // Recurse by rebuilding children from the original (clone shares
  // structure; rebuild each child through substitution).
  for (size_t i = 0; i < e.children.size(); ++i) {
    APUAMA_ASSIGN_OR_RETURN(
        clone->children[i],
        SubstituteForComposition(*e.children[i], agg_map, group_exprs));
  }
  if (e.case_else) {
    APUAMA_ASSIGN_OR_RETURN(
        clone->case_else,
        SubstituteForComposition(*e.case_else, agg_map, group_exprs));
  }
  return clone;
}

std::string OriginalOutputName(const sql::SelectItem& item, size_t ordinal) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr && item.expr->kind == ExprKind::kColumnRef) {
    return item.expr->column_name;
  }
  if (item.expr && item.expr->kind == ExprKind::kFuncCall) {
    return item.expr->func_name;
  }
  return StrFormat("column%zu", ordinal + 1);
}

}  // namespace

bool SvpRewriter::TouchesFactTable(const SelectStmt& query) const {
  for (const auto& t : sql::AllReferencedTables(query)) {
    if (catalog_->IsPartitionable(t)) return true;
  }
  return false;
}

Result<SvpPlan> SvpRewriter::Rewrite(const SelectStmt& query) const {
  // Work on a folded clone.
  std::unique_ptr<SelectStmt> work = query.Clone();
  sql::FoldConstants(work.get());

  // Locate the partition space in play.
  const VirtualPartitionSpace* space = nullptr;
  for (const auto& t : sql::AllReferencedTables(*work)) {
    const auto* s = catalog_->SpaceForTable(t);
    if (s != nullptr) {
      if (space != nullptr && s != space) {
        return Status::Unsupported("query spans multiple partition spaces");
      }
      space = s;
    }
  }
  if (space == nullptr) {
    return Status::Unsupported("query references no partitionable table");
  }

  // OLTP-style point access on the partition key: a single node can
  // answer through its own index; fanning out to every node would
  // only add overhead (the paper uses Apuama "only for OLAP query
  // processing" — this is the Cluster Administrator's check).
  for (const Expr* c : sql::SplitConjuncts(work->where.get())) {
    if (c->kind != ExprKind::kBinary || c->binary_op != BinaryOp::kEq) {
      continue;
    }
    const Expr& l = *c->children[0];
    const Expr& r = *c->children[1];
    const Expr* col = l.kind == ExprKind::kColumnRef ? &l : &r;
    const Expr* lit = col == &l ? &r : &l;
    if (col->kind == ExprKind::kColumnRef &&
        lit->kind == ExprKind::kLiteral &&
        space->IsMemberColumn(col->column_name)) {
      return Status::Unsupported(
          "point access on the partition key; inter-query routing is "
          "optimal");
    }
  }

  SvpPlan plan;
  plan.domain_min_ = space->min_value;
  plan.domain_max_ = space->max_value;
  plan.pred_min_ = space->min_value;
  plan.pred_max_ = space->max_value;
  for (const auto& t : sql::AllReferencedTables(*work)) {
    const std::string lowered = ToLower(t);
    bool seen_any = false;
    for (const auto& known : plan.all_tables_) {
      if (known == lowered) seen_any = true;
    }
    if (!seen_any) plan.all_tables_.push_back(lowered);
    const auto* member = space->FindMember(t);
    if (member == nullptr) continue;
    bool seen = false;
    for (const auto& known : plan.fact_tables_) {
      if (EqualsIgnoreCase(known, member->table)) seen = true;
    }
    if (!seen) plan.fact_tables_.push_back(member->table);
  }

  // Conservative predicate bounds on the partition key, read off the
  // query's own top-level conjuncts before range injection mutates
  // the WHERE clause. Only plain `vpa <op> int-literal` conjuncts
  // tighten the bounds — anything else leaves the whole domain, which
  // is always safe (pruning must never drop a non-empty partial).
  for (const Expr* c : sql::SplitConjuncts(work->where.get())) {
    if (c->kind != ExprKind::kBinary) continue;
    const Expr& l = *c->children[0];
    const Expr& r = *c->children[1];
    const Expr* col = nullptr;
    const Expr* lit = nullptr;
    bool col_on_left = false;
    if (l.kind == ExprKind::kColumnRef && r.kind == ExprKind::kLiteral) {
      col = &l;
      lit = &r;
      col_on_left = true;
    } else if (r.kind == ExprKind::kColumnRef &&
               l.kind == ExprKind::kLiteral) {
      col = &r;
      lit = &l;
    } else {
      continue;
    }
    if (!space->IsMemberColumn(col->column_name)) continue;
    if (lit->literal.type() != ValueType::kInt64) continue;
    const int64_t v = lit->literal.int_val();
    BinaryOp op = c->binary_op;
    if (!col_on_left) {
      // Normalize `lit op col` to `col op' lit`.
      switch (op) {
        case BinaryOp::kLt: op = BinaryOp::kGt; break;
        case BinaryOp::kLtEq: op = BinaryOp::kGtEq; break;
        case BinaryOp::kGt: op = BinaryOp::kLt; break;
        case BinaryOp::kGtEq: op = BinaryOp::kLtEq; break;
        default: break;
      }
    }
    switch (op) {
      case BinaryOp::kGtEq:
        if (v > plan.pred_min_) plan.pred_min_ = v;
        break;
      case BinaryOp::kGt:
        if (v + 1 > plan.pred_min_) plan.pred_min_ = v + 1;
        break;
      case BinaryOp::kLtEq:
        if (v < plan.pred_max_) plan.pred_max_ = v;
        break;
      case BinaryOp::kLt:
        if (v - 1 < plan.pred_max_) plan.pred_max_ = v - 1;
        break;
      default:
        break;
    }
  }

  // Inject range predicates (main scope + correlated subqueries).
  APUAMA_RETURN_NOT_OK(ConstrainStatement(work.get(), *catalog_, space, {},
                                          &plan.patches_,
                                          /*is_subquery=*/false));

  // Decide aggregate vs plain composition.
  bool has_agg = !work->group_by.empty();
  for (const auto& it : work->items) {
    if (it.star) {
      if (has_agg) return Status::Unsupported("SELECT * with aggregation");
      continue;
    }
    if (sql::ContainsAggregate(*it.expr)) has_agg = true;
  }
  if (work->having && !has_agg) {
    return Status::Unsupported("HAVING without aggregation");
  }

  auto comp = std::make_unique<SelectStmt>();
  comp->from.push_back(sql::TableRef{kPartialsTable, ""});

  if (has_agg) {
    if (work->distinct) {
      return Status::Unsupported("SELECT DISTINCT with aggregation");
    }
    // Aggregate inventory across output clauses.
    std::vector<const Expr*> agg_nodes;
    std::function<void(const Expr&)> collect = [&](const Expr& e) {
      if (e.kind == ExprKind::kFuncCall &&
          sql::IsAggregateFunction(e.func_name)) {
        agg_nodes.push_back(&e);
        return;
      }
      for (const auto& c : e.children) collect(*c);
      if (e.case_else) collect(*e.case_else);
    };
    for (const auto& it : work->items) collect(*it.expr);
    if (work->having) collect(*work->having);
    for (const auto& o : work->order_by) collect(*o.expr);

    std::vector<AggPartial> partials;
    partials.reserve(agg_nodes.size());
    std::unordered_map<const Expr*, const AggPartial*> agg_map;
    for (size_t i = 0; i < agg_nodes.size(); ++i) {
      APUAMA_ASSIGN_OR_RETURN(AggPartial p,
                              DecomposeAggregate(*agg_nodes[i], i));
      partials.push_back(std::move(p));
    }
    for (const auto& p : partials) agg_map[p.node] = &p;

    // Composition SELECT items: original outputs, substituted, with
    // original output names pinned as aliases.
    for (size_t i = 0; i < work->items.size(); ++i) {
      sql::SelectItem item;
      APUAMA_ASSIGN_OR_RETURN(
          item.expr, SubstituteForComposition(*work->items[i].expr, agg_map,
                                              work->group_by));
      item.alias = OriginalOutputName(work->items[i], i);
      comp->items.push_back(std::move(item));
    }
    // Composition GROUP BY over partial group columns.
    for (size_t j = 0; j < work->group_by.size(); ++j) {
      comp->group_by.push_back(Col(StrFormat("g%zu", j)));
    }
    if (work->having) {
      APUAMA_ASSIGN_OR_RETURN(
          comp->having,
          SubstituteForComposition(*work->having, agg_map, work->group_by));
    }
    // ORDER BY: ordinals and output-alias references pass through;
    // other expressions are substituted.
    for (const auto& o : work->order_by) {
      sql::OrderItem oi;
      oi.desc = o.desc;
      bool passthrough = false;
      if (o.expr->kind == ExprKind::kLiteral &&
          o.expr->literal.type() == ValueType::kInt64) {
        passthrough = true;  // ordinal
      } else if (o.expr->kind == ExprKind::kColumnRef &&
                 o.expr->table_qualifier.empty()) {
        for (const auto& item : comp->items) {
          if (EqualsIgnoreCase(item.alias, o.expr->column_name)) {
            passthrough = true;
            break;
          }
        }
      }
      if (passthrough) {
        oi.expr = o.expr->Clone();
      } else {
        APUAMA_ASSIGN_OR_RETURN(
            oi.expr,
            SubstituteForComposition(*o.expr, agg_map, work->group_by));
      }
      comp->order_by.push_back(std::move(oi));
    }
    comp->limit = work->limit;
    comp->offset = work->offset;

    // Sub-query select list: g<j> group columns then partial columns.
    std::vector<sql::SelectItem> sub_items;
    for (size_t j = 0; j < work->group_by.size(); ++j) {
      sql::SelectItem item;
      item.expr = work->group_by[j]->Clone();
      item.alias = StrFormat("g%zu", j);
      sub_items.push_back(std::move(item));
    }
    for (auto& p : partials) {
      for (auto& item : p.sub_items) sub_items.push_back(std::move(item));
    }
    work->items = std::move(sub_items);
    work->having = nullptr;   // applied at composition
    work->order_by.clear();   // global order happens at composition
    work->limit = -1;         // cannot cut partial groups early
    work->offset = 0;
  } else {
    // Plain (non-aggregate) query: partials are row subsets.
    // ORDER BY must be computable from the output columns.
    for (size_t i = 0; i < work->items.size(); ++i) {
      if (work->items[i].star) {
        return Status::Unsupported(
            "SELECT * is not SVP-composable (name outputs explicitly)");
      }
    }
    std::vector<std::string> out_names;
    for (size_t i = 0; i < work->items.size(); ++i) {
      out_names.push_back(OriginalOutputName(work->items[i], i));
    }
    comp->distinct = work->distinct;
    for (size_t i = 0; i < work->items.size(); ++i) {
      sql::SelectItem item;
      item.expr = Col(StrFormat("p%zu", i));
      item.alias = out_names[i];
      comp->items.push_back(std::move(item));
    }
    for (const auto& o : work->order_by) {
      sql::OrderItem oi;
      oi.desc = o.desc;
      if (o.expr->kind == ExprKind::kLiteral &&
          o.expr->literal.type() == ValueType::kInt64) {
        oi.expr = o.expr->Clone();
      } else {
        // Map to an output column: by alias or by structural equality
        // with a select item.
        int slot = -1;
        if (o.expr->kind == ExprKind::kColumnRef &&
            o.expr->table_qualifier.empty()) {
          for (size_t i = 0; i < out_names.size(); ++i) {
            if (EqualsIgnoreCase(out_names[i], o.expr->column_name)) {
              slot = static_cast<int>(i);
              break;
            }
          }
        }
        if (slot < 0) {
          for (size_t i = 0; i < work->items.size(); ++i) {
            if (sql::ExprEquals(*o.expr, *work->items[i].expr)) {
              slot = static_cast<int>(i);
              break;
            }
          }
        }
        if (slot < 0) {
          return Status::Unsupported(
              "ORDER BY expression is not among the output columns");
        }
        oi.expr = Col(StrFormat("p%d", slot));
      }
      comp->order_by.push_back(std::move(oi));
    }
    comp->limit = work->limit;
    comp->offset = work->offset;

    // Sub-queries: alias outputs p<i>; keep DISTINCT; keep ORDER BY
    // and LIMIT only when a LIMIT exists (top-k pushdown: each node
    // must return limit+offset rows — the skip happens globally).
    // The pushed-down ORDER BY must reference the renamed p<i>
    // outputs, which is exactly what the composition's order keys do.
    for (size_t i = 0; i < work->items.size(); ++i) {
      work->items[i].alias = StrFormat("p%zu", i);
    }
    if (work->limit < 0) {
      work->order_by.clear();
    } else {
      work->order_by.clear();
      for (const auto& o : comp->order_by) {
        sql::OrderItem oi;
        oi.desc = o.desc;
        oi.expr = o.expr->Clone();
        work->order_by.push_back(std::move(oi));
      }
      work->limit += work->offset;
    }
    work->offset = 0;
  }

  plan.composition_sql_ = sql::UnparseSelect(*comp);
  // Compile the direct-merge fast path from the composition AST while
  // we still own it. Pure re-aggregations (every rewritable TPC-H
  // read) get a program; anything else keeps merge_ null and composes
  // through MemDb off the SQL text.
  auto program = MergeProgram::Compile(std::move(comp));
  if (program.ok()) plan.merge_ = std::move(program).value();
  plan.template_ = std::move(work);
  return plan;
}

}  // namespace apuama

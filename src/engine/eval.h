// Interpretive expression evaluation over intermediate relations.
//
// A Relation is a materialized set of rows whose slots are described by
// qualified column bindings. Evaluation resolves column references
// against a chain of scopes (inner-to-outer, for correlated
// subqueries), with per-expression slot memoization so name resolution
// costs are paid once per plan stage, not once per row.
//
// SQL three-valued logic: comparisons with NULL yield NULL; AND/OR
// follow Kleene logic; WHERE keeps rows only when the predicate is
// true (not NULL).
#ifndef APUAMA_ENGINE_EVAL_H_
#define APUAMA_ENGINE_EVAL_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "types/schema.h"

namespace apuama::engine {

/// One output slot of an intermediate relation.
struct ColumnBinding {
  std::string qualifier;  // table alias/name this slot came from ("" = computed)
  std::string name;       // column name (lower-cased)
};

/// Materialized intermediate relation.
struct Relation {
  std::vector<ColumnBinding> columns;
  std::vector<Row> rows;

  int FindSlot(const std::string& qualifier, const std::string& name) const;
};

class Executor;  // forward; needed for correlated-subquery fallback

/// Resolves column refs against one relation, memoizing slots by
/// expression node identity. One resolver per plan stage.
class ColumnResolver {
 public:
  explicit ColumnResolver(const Relation* rel) : rel_(rel) {}

  /// Slot for a column-ref expression; negative Status when the name
  /// does not resolve in this relation (caller may try outer scope).
  Result<int> Resolve(const sql::Expr& e);

  const Relation* relation() const { return rel_; }

 private:
  const Relation* rel_;
  std::unordered_map<const sql::Expr*, int> cache_;
};

/// A lexical scope: a resolver plus the current row, chained outward.
struct EvalScope {
  ColumnResolver* resolver = nullptr;
  const Row* row = nullptr;
  const EvalScope* outer = nullptr;
};

/// Evaluation environment.
struct EvalContext {
  const EvalScope* scope = nullptr;
  /// Computed aggregate values keyed by AST node (aggregate-stage
  /// evaluation only).
  const std::unordered_map<const sql::Expr*, Value>* agg_values = nullptr;
  /// Executor used to run correlated EXISTS/IN subqueries that the
  /// planner could not decorrelate. Null ⇒ such predicates error.
  Executor* executor = nullptr;
  /// CPU accounting: incremented per expression node visited.
  uint64_t* cpu_ops = nullptr;
};

/// Evaluates `e` in `ctx`. Type errors surface as Status.
Result<Value> Eval(const sql::Expr& e, const EvalContext& ctx);

/// Interprets a value as a SQL condition: 1 = true, 0 = false,
/// -1 = unknown (NULL).
int Truthiness(const Value& v);

/// SQL LIKE with % and _ wildcards.
bool LikeMatch(const std::string& text, const std::string& pattern);

}  // namespace apuama::engine

#endif  // APUAMA_ENGINE_EVAL_H_

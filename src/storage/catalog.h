// Per-database catalog of tables.
#ifndef APUAMA_STORAGE_CATALOG_H_
#define APUAMA_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace apuama::storage {

/// Owns all tables of one database instance (one per simulated node).
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates a table; error if the name exists.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Table by (case-insensitive) name, or NotFound.
  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  Status DropTable(const std::string& name);

  /// Names of all tables, in creation order.
  std::vector<std::string> TableNames() const;

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<std::string> creation_order_;
  uint32_t next_table_id_ = 1;
};

}  // namespace apuama::storage

#endif  // APUAMA_STORAGE_CATALOG_H_

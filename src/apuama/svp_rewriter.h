// Simple Virtual Partitioning (SVP) query rewriter — the core of the
// paper's contribution (sections 2 and 3).
//
// Given an OLAP SELECT and the Data Catalog, the rewriter:
//   1. decides whether the query is SVP-rewritable (references a
//      fact table; any fact reference inside a subquery must be
//      equality-correlated on the partition key; aggregates must be
//      decomposable — avg becomes sum+count, count(distinct) is not
//      decomposable);
//   2. produces a sub-query template whose SELECT list is decomposed
//      into mergeable partial aggregates and whose WHERE gained
//      `vpa >= :lo AND vpa < :hi` range predicates on every
//      constrained fact reference (including inside correlated
//      subqueries — the derived-partitioning trick);
//   3. produces the composition SQL that the Result Composer runs
//      over the in-memory `partials` table: re-aggregation
//      (sum of sums, sum of counts, min of mins, guarded
//      sum/count for avg), HAVING, global ORDER BY and LIMIT.
//
// A non-rewritable query is not an error for Apuama: the caller
// falls back to plain inter-query routing (one node executes the
// original query). The Status message says why, for observability.
#ifndef APUAMA_APUAMA_SVP_REWRITER_H_
#define APUAMA_APUAMA_SVP_REWRITER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apuama/data_catalog.h"
#include "apuama/partial_merger.h"
#include "common/status.h"
#include "sql/ast.h"

namespace apuama {

/// Name of the composer's partial-result table.
inline constexpr char kPartialsTable[] = "partials";

/// Renames FROM references in `stmt` through `table_map` (original ->
/// physical name), pinning each original binding as an alias so
/// qualified column references keep resolving. Recurses into
/// subqueries. The exchange operator uses this to redirect queries at
/// materialized fragment copies.
void RemapSelectTables(
    sql::SelectStmt* stmt,
    const std::vector<std::pair<std::string, std::string>>& table_map);

/// The rewrite product for one query.
class SvpPlan {
 public:
  /// Key intervals [lo, hi) covering the domain, one per node.
  std::vector<std::pair<int64_t, int64_t>> MakeIntervals(int nodes) const;

  /// Renders the sub-query for one key interval.
  std::string SubquerySql(int64_t lo, int64_t hi);

  /// Renders the sub-query for one key interval with fact-table
  /// references renamed through `table_map` (exchange operator:
  /// redirect a slice at materialized fragment copies). References
  /// keep their original binding name via an alias, so column
  /// qualifiers in the query body stay valid. The template is cloned
  /// for the render; the plan itself is untouched apart from the
  /// shared patch literals.
  std::string SubquerySqlMapped(
      int64_t lo, int64_t hi,
      const std::vector<std::pair<std::string, std::string>>& table_map);

  /// Composition query text (over kPartialsTable).
  const std::string& composition_sql() const { return composition_sql_; }

  /// Compiled direct-merge program for the composition, or null when
  /// the composition needs the general MemDb path (HAVING, plain row
  /// unions, ...). Immutable and shared across plan clones.
  const std::shared_ptr<const MergeProgram>& merge_program() const {
    return merge_;
  }

  /// Deep-copies the plan so a cached prototype can be rendered
  /// concurrently (SubquerySql mutates template literals in place).
  /// The compiled merge program is shared, not copied.
  SvpPlan Clone() const;

  int64_t domain_min() const { return domain_min_; }
  int64_t domain_max() const { return domain_max_; }

  /// Conservative inclusive bounds on the partition key implied by
  /// the query's own top-level predicates (defaults to the whole
  /// domain). Key intervals outside [pred_min, pred_max] provably
  /// contribute empty partials — the basis for fragment pruning.
  int64_t pred_min() const { return pred_min_; }
  int64_t pred_max() const { return pred_max_; }

  /// Member (fact) tables the query references, lower-cased and
  /// deduplicated — the tables whose fragmentation drives dispatch.
  const std::vector<std::string>& fact_tables() const { return fact_tables_; }

  /// Every table the query references (facts and dimensions,
  /// including inside subqueries), lower-cased — the read side of the
  /// scoped consistency barrier must conflict with writes to any of
  /// them.
  const std::vector<std::string>& all_tables() const { return all_tables_; }

  /// How many fact-table references were range-constrained
  /// (introspection for tests).
  size_t num_constrained_refs() const { return patches_.size() / 2; }

  /// Internal: a literal node inside the template to overwrite per
  /// interval. Public so the rewriter's helpers can build them.
  struct Patch {
    sql::Expr* literal;
    bool is_lo;
  };

 private:
  friend class SvpRewriter;

  std::unique_ptr<sql::SelectStmt> template_;
  std::vector<Patch> patches_;
  std::string composition_sql_;
  std::shared_ptr<const MergeProgram> merge_;
  int64_t domain_min_ = 0;
  int64_t domain_max_ = 0;
  int64_t pred_min_ = 0;
  int64_t pred_max_ = 0;
  std::vector<std::string> fact_tables_;
  std::vector<std::string> all_tables_;
};

class SvpRewriter {
 public:
  explicit SvpRewriter(const DataCatalog* catalog) : catalog_(catalog) {}

  /// Rewrites `query`; Unsupported status when not SVP-rewritable
  /// (message explains why).
  Result<SvpPlan> Rewrite(const sql::SelectStmt& query) const;

  /// Cheap pre-check used by the Cluster Administrator: does the
  /// query reference any partitionable table at all?
  bool TouchesFactTable(const sql::SelectStmt& query) const;

 private:
  const DataCatalog* catalog_;
};

}  // namespace apuama

#endif  // APUAMA_APUAMA_SVP_REWRITER_H_

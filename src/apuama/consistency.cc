#include "apuama/consistency.h"

#include <algorithm>
#include <cassert>

namespace apuama {

ConsistencyManager::ConsistencyManager(
    int num_nodes, std::function<bool(int)> node_relevant)
    : num_nodes_(num_nodes < 1 ? 1 : num_nodes),
      node_relevant_(std::move(node_relevant)),
      node_done_(static_cast<size_t>(num_nodes_), false),
      last_done_(static_cast<size_t>(num_nodes_), true) {}

bool ConsistencyManager::ScopesConflict(const std::vector<std::string>& a,
                                        const std::vector<std::string>& b) {
  if (a.empty() || b.empty()) return true;
  for (const auto& x : a) {
    for (const auto& y : b) {
      if (x == y) return true;
    }
  }
  return false;
}

bool ConsistencyManager::AnyPreparingConflictsLocked(
    const std::vector<std::string>& write_scope) const {
  for (const auto& rs : preparing_scopes_) {
    if (ScopesConflict(rs, write_scope)) return true;
  }
  return false;
}

bool ConsistencyManager::AnyWriteConflictsLocked(
    const std::vector<std::string>& read_scope) const {
  if ((write_open_ || executing_open_ > 0) &&
      ScopesConflict(open_scope_, read_scope)) {
    return true;
  }
  if (executing_tail_ > 0 && ScopesConflict(last_scope_, read_scope)) {
    return true;
  }
  return false;
}

bool ConsistencyManager::BroadcastComplete() const {
  for (int i = 0; i < num_nodes_; ++i) {
    const size_t ni = static_cast<size_t>(i);
    if (node_done_[ni]) continue;
    // A routed write only waits for its target replica set.
    if (!open_targeted_.empty() && !open_targeted_[ni]) continue;
    // A node the controller cannot reach is not waited for.
    if (node_relevant_ && !node_relevant_(i)) continue;
    return false;
  }
  return true;
}

void ConsistencyManager::CloseBroadcastLocked() {
  write_open_ = false;
  last_stmt_ = std::move(open_stmt_);
  last_done_ = node_done_;
  last_scope_ = std::move(open_scope_);
  open_stmt_.clear();
  open_scope_.clear();
  open_targeted_.clear();
}

ConsistencyManager::WriteClass ConsistencyManager::BeginNodeWrite(
    int node, const std::string& statement,
    const std::vector<int>& targets,
    const std::vector<std::string>& scope) {
  std::unique_lock<std::mutex> lock(mu_);
  const size_t ni = static_cast<size_t>(node);
  if (write_open_ && statement == open_stmt_ && node >= 0 &&
      node < num_nodes_ && !node_done_[ni]) {
    ++executing_open_;
    return WriteClass::kContinuation;
  }
  if (!write_open_ && statement == last_stmt_ && node >= 0 &&
      node < num_nodes_ && !last_done_[ni]) {
    // Late statement of the previous broadcast (its node was
    // unreachable when the broadcast closed).
    ++executing_tail_;
    return WriteClass::kTail;
  }
  // A new logical write: wait until no conflicting SVP dispatch is
  // preparing and the previous broadcast is fully applied.
  if (AnyPreparingConflictsLocked(scope)) ++writes_blocked_;
  cv_.wait(lock, [this, &scope] {
    return !AnyPreparingConflictsLocked(scope) && !write_open_;
  });
  write_open_ = true;
  open_stmt_ = statement;
  open_scope_ = scope;
  std::fill(node_done_.begin(), node_done_.end(), false);
  open_targeted_.clear();
  if (!targets.empty()) {
    open_targeted_.assign(static_cast<size_t>(num_nodes_), false);
    for (int t : targets) {
      if (t >= 0 && t < num_nodes_) open_targeted_[static_cast<size_t>(t)] = true;
    }
  }
  ++logical_writes_;
  ++executing_open_;
  return WriteClass::kNew;
}

bool ConsistencyManager::EndNodeWrite(int node, WriteClass cls) {
  bool closed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cls == WriteClass::kTail) {
      --executing_tail_;
    } else {
      --executing_open_;
    }
    if (node >= 0 && node < num_nodes_) {
      const size_t ni = static_cast<size_t>(node);
      if (cls == WriteClass::kTail) {
        last_done_[ni] = true;
      } else {
        node_done_[ni] = true;
      }
    }
    if (write_open_ && cls != WriteClass::kTail && BroadcastComplete()) {
      CloseBroadcastLocked();
      closed = true;
    }
  }
  cv_.notify_all();
  return closed;
}

void ConsistencyManager::BeginSvpPrepare(
    const std::function<bool()>& counters_equal,
    const std::vector<std::string>& read_scope) {
  std::unique_lock<std::mutex> lock(mu_);
  // Blocks new conflicting logical writes immediately.
  preparing_scopes_.push_back(read_scope);
  if (AnyWriteConflictsLocked(read_scope)) ++svp_waits_;
  cv_.wait(lock, [this, &counters_equal, &read_scope] {
    return !AnyWriteConflictsLocked(read_scope) &&
           (!counters_equal || counters_equal());
  });
}

void ConsistencyManager::EndSvpPrepare(
    const std::vector<std::string>& read_scope) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::find(preparing_scopes_.begin(), preparing_scopes_.end(),
                        read_scope);
    if (it != preparing_scopes_.end()) preparing_scopes_.erase(it);
  }
  cv_.notify_all();
}

}  // namespace apuama

// Ablation 5 — SVP vs AVP (paper section 6 related-work claim).
//
// The paper argues Apuama's Simple Virtual Partitioning beats SmaQ's
// Adaptive Virtual Partitioning for concurrent workloads: "AVP
// locally subdivides the local sub-query; it increases the level of
// concurrency while inducing a bad memory cache use" — while AVP's
// own strength (Lima et al. 2004) is dynamic load balancing when
// nodes are unevenly loaded. Both predictions are measurable here:
//   * homogeneous cluster, concurrent sequences: SVP wins;
//   * one 4x-slower straggler node, isolated query: AVP wins by
//     stealing the straggler's range.
#include <cstdio>

#include "bench/bench_util.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "workload/cluster_sim.h"
#include "workload/runner.h"
#include "workload/sequences.h"

using namespace apuama;           // NOLINT
using namespace apuama::bench;    // NOLINT
using namespace apuama::workload; // NOLINT

int main() {
  const double sf = EnvDouble("APUAMA_BENCH_SF", 0.01);
  const int nodes = EnvInt("APUAMA_BENCH_NODES", 8);
  std::printf("Ablation: SVP (Apuama) vs AVP (SmaQ) intra-query modes "
              "(SF=%g, %d nodes)\n", sf, nodes);
  tpch::TpchData data(tpch::DbgenOptions{.scale_factor = sf});

  auto make_opts = [&](IntraQueryMode mode, bool straggler) {
    ClusterSimOptions o;
    o.num_nodes = nodes;
    o.intra_mode = mode;
    if (straggler) {
      o.node_speed_factors.assign(static_cast<size_t>(nodes), 1.0);
      o.node_speed_factors.back() = 4.0;
    }
    return o;
  };

  // (1) Isolated latency, homogeneous vs straggler cluster.
  Table iso("Isolated query latency (virtual)");
  iso.SetHeader({"query", "cluster", "SVP", "AVP", "AVP/SVP",
                 "AVP chunks", "AVP steals"});
  for (int q : {1, 6}) {
    for (bool straggler : {false, true}) {
      SimTime svp_t = 0, avp_t = 0;
      uint64_t chunks = 0, steals = 0;
      {
        ClusterSim c(data, make_opts(IntraQueryMode::kSvp, straggler));
        svp_t = *c.MeasureIsolated(*tpch::QuerySql(q), 3);
      }
      {
        ClusterSim c(data, make_opts(IntraQueryMode::kAvp, straggler));
        avp_t = *c.MeasureIsolated(*tpch::QuerySql(q), 3);
        chunks = c.avp_chunks();
        steals = c.avp_steals();
      }
      iso.AddRow({StrFormat("Q%d", q),
                  straggler ? "1 node 4x slower" : "homogeneous",
                  Seconds(svp_t), Seconds(avp_t),
                  Ratio(static_cast<double>(avp_t) /
                        static_cast<double>(svp_t)),
                  StrFormat("%llu", static_cast<unsigned long long>(chunks)),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(steals))});
    }
  }
  iso.Print();

  // (2) Concurrent sequences (the paper's preferred regime for SVP).
  Table thr("Throughput, 3 concurrent sequences (homogeneous cluster)");
  thr.SetHeader({"mode", "queries/min", "makespan"});
  auto sequences = MakeQuerySequences(3, 77, 6);
  for (auto [label, mode] :
       {std::pair{"SVP", IntraQueryMode::kSvp},
        std::pair{"AVP", IntraQueryMode::kAvp}}) {
    ClusterSim c(data, make_opts(mode, false));
    auto r = RunStreams(&c, sequences);
    if (!r.status.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", label,
                   r.status.ToString().c_str());
      return 1;
    }
    thr.AddRow({label, Ratio(r.queries_per_minute), Seconds(r.makespan)});
  }
  thr.Print();
  std::printf("\nExpected shape: AVP wins only under node skew; SVP wins "
              "the balanced + concurrent regime (paper section 6).\n");
  return 0;
}

#include "workload/sequences.h"

#include "common/rng.h"
#include "tpch/queries.h"

namespace apuama::workload {

std::vector<std::vector<std::string>> MakeQuerySequences(int count,
                                                         uint64_t seed) {
  return MakeQuerySequences(count, seed, -1);
}

std::vector<std::vector<std::string>> MakeQuerySequences(
    int count, uint64_t seed, int queries_per_seq) {
  Rng rng(seed);
  std::vector<std::vector<std::string>> out;
  out.reserve(static_cast<size_t>(count));
  for (int s = 0; s < count; ++s) {
    std::vector<int> nums = tpch::PaperQueryNumbers();
    rng.Shuffle(&nums);
    if (queries_per_seq > 0 &&
        queries_per_seq < static_cast<int>(nums.size())) {
      nums.resize(static_cast<size_t>(queries_per_seq));
    }
    std::vector<std::string> seq;
    seq.reserve(nums.size());
    for (int q : nums) seq.push_back(*tpch::QuerySql(q));
    out.push_back(std::move(seq));
  }
  return out;
}

}  // namespace apuama::workload

// The Apuama Engine (paper Fig. 1): Cluster Administrator +
// Intra-Query Executor + Node Processors + Result Composer, glued to
// C-JDBC through ApuamaDriver without touching controller code.
//
// Request flow for a read that lands on backend i:
//   ApuamaConnection(i) -> ApuamaEngine::ExecuteRead(i, sql)
//     Query Parser: which tables? Data Catalog: partitionable?
//     yes -> Intra-Query Executor: consistency barrier, SVP rewrite,
//            dispatch sub-queries to ALL node processors in parallel,
//            Result Composer merges partials       (intra-query path)
//     no  -> NodeProcessor(i).Execute(sql)          (inter-query path)
// Writes go through every backend (C-JDBC broadcast); each node's
// processor brackets them with the consistency manager.
#ifndef APUAMA_APUAMA_APUAMA_ENGINE_H_
#define APUAMA_APUAMA_APUAMA_ENGINE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "apuama/approx/approx_rewriter.h"
#include "apuama/approx/sample_catalog.h"
#include "apuama/avp.h"
#include "apuama/consistency.h"
#include "apuama/data_catalog.h"
#include "apuama/exchange/exchange.h"
#include "apuama/node_processor.h"
#include "apuama/plan_cache.h"
#include "apuama/result_composer.h"
#include "apuama/share/result_cache.h"
#include "apuama/share/work_sharing.h"
#include "apuama/svp_rewriter.h"
#include "cjdbc/connection.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/exec_stats.h"
#include "obs/metrics.h"
#include "sql/ast.h"

namespace apuama {

/// Which intra-query technique the engine applies to eligible reads.
enum class IntraQueryTechnique {
  kSvp,  // the paper: one sub-query per node
  kAvp,  // related work (SmaQ): adaptive chunks + range stealing
};

struct ApuamaOptions {
  NodeProcessorOptions node_options;
  /// Enable intra-query parallelism (off = behave exactly like plain
  /// C-JDBC; the baseline configuration).
  bool enable_intra_query = true;
  IntraQueryTechnique technique = IntraQueryTechnique::kSvp;
  AvpOptions avp;
  /// Threads used to dispatch sub-queries concurrently.
  int dispatch_threads = 8;
  /// Total intra-node (morsel) execution threads across the cluster,
  /// divided evenly per node with a floor of 1. 0 = one machine-wide
  /// default budget (engine::DefaultExecThreads()) — NOT the per-node
  /// default, which would oversubscribe the host n_nodes times.
  /// Ignored when node_options.exec_threads is already set.
  int exec_thread_budget = 0;
  /// Entries in the parse+rewrite plan cache (0 disables it).
  size_t plan_cache_entries = 128;
  /// Initial state of the versioned result cache (SET result_cache
  /// flips it at runtime) and its capacity in entries.
  bool enable_result_cache = false;
  size_t result_cache_entries = 256;
  /// Initial state of shared-scan admission batching (SET share_scans
  /// flips it at runtime) and how long the controller's gate holds a
  /// batch open for more arrivals.
  bool enable_share_scans = false;
  int64_t admission_window_us = 200;
  /// Initial state of the physical-fragmentation overlay
  /// (SET fragmentation flips it at runtime). Inert until a
  /// FragmentationSpec is installed in the Data Catalog; with no spec
  /// the engine behaves identically either way.
  bool enable_fragmentation = true;
  /// Initial exchange movement strategy: "auto" (broadcast-small when
  /// possible, else shuffle), "shuffle", or "broadcast"
  /// (SET exchange_strategy flips it at runtime).
  std::string exchange_strategy = "auto";
};

/// Cumulative engine statistics (observability / tests / benches).
/// Lock-free atomics: the counters sit on the inter-query hot path
/// (every passthrough read and write), where a shared mutex would
/// serialize otherwise independent clients.
struct ApuamaStats {
  std::atomic<uint64_t> svp_queries{0};        // queries run with
                                               // intra-query parallelism
  std::atomic<uint64_t> passthrough_reads{0};  // reads sent to one node
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> non_rewritable{0};     // fact queries SVP declined
  std::atomic<uint64_t> partial_rows_total{0};
  std::atomic<uint64_t> compose_ms_total{0};   // wall time spent composing
  std::atomic<uint64_t> avp_chunks{0};         // AVP: sub-queries issued
  std::atomic<uint64_t> avp_steals{0};         // AVP: ranges stolen
  std::atomic<uint64_t> compose_fastpath{0};   // direct-merge compositions
  std::atomic<uint64_t> compose_fallback{0};   // MemDb compositions
  std::atomic<uint64_t> plan_cache_hits{0};
  std::atomic<uint64_t> plan_cache_misses{0};
  std::atomic<uint64_t> svp_retries{0};        // failover resubmissions
  std::atomic<uint64_t> result_cache_hits{0};  // reads served from cache
  std::atomic<uint64_t> result_cache_misses{0};
  std::atomic<uint64_t> queries_coalesced{0};  // rode another's admission
  std::atomic<uint64_t> shared_scans{0};       // batches that shared a scan
  std::atomic<uint64_t> shared_scan_queries{0};  // queries in those batches
  // Columnar execution, summed over every node result the engine saw
  // (SVP partials, passthrough reads, shared batches):
  std::atomic<uint64_t> vectorized_rows{0};    // row-slots through kernels
  std::atomic<uint64_t> dict_hits{0};          // slots through dict kernels
  std::atomic<uint64_t> probe_vectorized_rows{0};  // vectorized join probes
  std::atomic<uint64_t> columnar_chunks{0};    // chunks built first-time
  std::atomic<uint64_t> columnar_rebuilds{0};  // chunks rebuilt after writes
  std::atomic<uint64_t> merge_central{0};      // adaptive-merge decisions
  std::atomic<uint64_t> merge_partitioned{0};
  std::atomic<uint64_t> merge_radix{0};
  // Physical fragmentation (shared-nothing overlay):
  std::atomic<uint64_t> routed_writes{0};      // writes sent to a replica
                                               // set instead of broadcast
  std::atomic<uint64_t> write_fanout_total{0};  // nodes touched, summed
                                                // over logical writes
  std::atomic<uint64_t> exchange_bytes{0};     // bytes moved between nodes
  std::atomic<uint64_t> exchange_shuffles{0};  // shuffled assignments
  std::atomic<uint64_t> exchange_broadcasts{0};  // small tables broadcast
  std::atomic<uint64_t> fragments_pruned{0};   // intervals skipped by
                                               // predicate pruning
  // Approximate query tier:
  std::atomic<uint64_t> approx_queries{0};     // answered from a scramble
  std::atomic<uint64_t> approx_early_exits{0};  // met the error target early
  std::atomic<uint64_t> approx_subqueries_skipped{0};  // cancelled sub-queries
  std::atomic<uint64_t> approx_fallbacks{0};   // APPROX served exactly
  std::atomic<uint64_t> scramble_builds{0};    // CREATE SAMPLE materializations
  std::atomic<uint64_t> scramble_rebuilds{0};  // staleness-triggered rebuilds

  /// Folds one node result's columnar counters into the engine-wide
  /// totals (called wherever a node ExecStats crosses the middleware
  /// boundary, so ToString(), the metrics registry, and EXPLAIN
  /// ANALYZE all agree on what the columnar path did).
  void NoteNodeStats(const engine::ExecStats& s) {
    auto bump = [](std::atomic<uint64_t>& a, uint64_t d) {
      if (d != 0) a.fetch_add(d, std::memory_order_relaxed);
    };
    bump(vectorized_rows, s.vectorized_rows);
    bump(dict_hits, s.dict_hits);
    bump(probe_vectorized_rows, s.probe_vectorized_rows);
    bump(columnar_chunks, s.columnar_chunks_built);
    bump(columnar_rebuilds, s.columnar_chunk_rebuilds);
    bump(merge_central, s.merge_central);
    bump(merge_partitioned, s.merge_partitioned);
    bump(merge_radix, s.merge_radix);
  }

  /// SHOW-style one-line rendering of every counter (observability:
  /// benches and operators read cache efficacy off this directly).
  std::string ToString() const;
  /// The counters as ordered key/value pairs — the single source
  /// ToString(), the JSON export, and the obs::Registry provider all
  /// render from.
  std::vector<std::pair<std::string, uint64_t>> Kv() const;
};

/// Per-query timing profile collected by EXPLAIN ANALYZE. The
/// intra-query path crosses threads (dispatch pool), so these numbers
/// travel in an explicit struct rather than the thread-local
/// timeline: each dispatch worker writes its own preallocated slot.
struct SvpProfile {
  int64_t barrier_wait_us = 0;
  std::vector<int64_t> node_times_us;  // one slot per sub-query
  std::vector<int> node_ids;           // node that ran each sub-query
  int64_t compose_us = 0;
  uint64_t partial_rows = 0;
  uint64_t retries = 0;
  uint64_t exchange_bytes = 0;     // moved for this query
  uint64_t fragments_pruned = 0;   // intervals pruned for this query
  engine::ExecStats node_stats;  // summed over all partials
  // Approximate tier (zero on exact paths, keeping the EXPLAIN
  // ANALYZE row shape fixed):
  double sample_ratio = 0.0;       // scramble rows / base rows
  double ci_half_width = 0.0;      // worst relative CI half-width
  uint64_t subqueries_skipped = 0;  // early-exit cancellations
};

class ApuamaEngine : public share::WorkSharingHooks {
 public:
  ApuamaEngine(cjdbc::ReplicaSet* replicas, DataCatalog catalog,
               ApuamaOptions options = ApuamaOptions());

  /// Read entry point for backend `node_id` (the node C-JDBC's load
  /// balancer picked). Intra-query path when eligible, else
  /// pass-through on that node.
  Result<engine::QueryResult> ExecuteRead(int node_id,
                                          const std::string& sql);

  /// Write entry point for backend `node_id`. C-JDBC broadcasts one
  /// logical write as N per-node statements; the consistency manager
  /// recognizes the broadcast and brackets it as one logical write.
  Result<engine::QueryResult> ExecuteWriteOn(int node_id,
                                             const std::string& sql);

  /// Batch read entry point for backend `node_id` — the controller's
  /// admission gate hands a whole batch here. SVP-eligible queries
  /// keep their composition path (bit-identity with solo execution);
  /// the rest run as one shared morsel scan on the node, falling back
  /// to one-by-one execution when the batch is not shareable. Results
  /// align with `sqls`.
  std::vector<Result<engine::QueryResult>> ExecuteSharedRead(
      int node_id, const std::vector<std::string>& sqls);

  /// EXPLAIN ANALYZE entry point: runs the statement's query through
  /// the normal read routing while collecting an SvpProfile, and
  /// returns the per-level breakdown table (level, metric, value) —
  /// admission wait (from the active obs::RequestTimeline, stamped by
  /// the controller), barrier wait, per-node sub-query min/max/skew,
  /// morsels and pages, composition time. The row *shape* is fixed
  /// regardless of path so clients can rely on it.
  Result<engine::QueryResult> ExecuteAnalyze(int node_id,
                                             const sql::ExplainStmt& stmt);

  // share::WorkSharingHooks — driven by the controller's gate.
  bool sharing_enabled() const override;
  bool cache_enabled() const override;
  int64_t admission_window_us() const override;
  std::shared_ptr<const engine::QueryResult> CacheLookup(
      const std::string& fingerprint) override;
  std::optional<share::ResultCache::FillTicket> CacheBeginFill(
      const std::string& fingerprint,
      const std::set<std::string>& tables) override;
  void CacheInsert(
      const share::ResultCache::FillTicket& ticket,
      std::shared_ptr<const engine::QueryResult> result) override;
  void NoteCoalesced(uint64_t n) override;

  /// Runtime knob flips (the connection layer intercepts the
  /// SET share_scans / SET result_cache broadcasts).
  void SetShareScans(bool on);
  void SetResultCache(bool on);
  /// SET fragmentation on|off — toggles the physical-fragmentation
  /// overlay (routing, scoped barrier, exchange). Turning it off does
  /// NOT re-replicate data already diverged by routed writes: the
  /// byte-for-byte restoration contract holds when no routed write
  /// happened while it was on. Drops the result cache (epoch keys
  /// change meaning across the flip).
  void SetFragmentationEnabled(bool on);
  /// SET exchange_strategy = auto|shuffle|broadcast.
  void SetExchangeStrategy(const std::string& name);
  /// True when the overlay is on AND at least one table has a spec.
  bool fragmentation_active() const;
  /// Applies ALTER TABLE ... FRAGMENT BY / UNFRAGMENT to the Data
  /// Catalog (middleware-level DDL: no stored rows move).
  Status ApplyFragmentationDdl(const sql::AlterFragmentStmt& stmt);
  /// Applies CREATE SAMPLE / DROP SAMPLE: materializes (or removes)
  /// a scramble on every replica and (de)registers its private
  /// partition space. Idempotent per broadcast — a repeat call that
  /// finds a fresh identical scramble is a no-op, so the controller's
  /// per-backend DDL fan-out builds once.
  Status ApplySampleDdl(const sql::Stmt& stmt);
  /// SET approx on|off — routes eligible plain SELECTs through the
  /// approximate tier. Off (default) leaves every existing read path
  /// byte-for-byte untouched; the APPROX verb works either way.
  void SetApproxEnabled(bool on);
  bool approx_enabled() const;
  /// SET sample_seed = N — seed for subsequent scramble builds.
  void SetSampleSeed(int64_t seed);
  /// SET approx_error_target = x — relative CI half-width at which
  /// an APPROX query stops merging sub-queries (0 = merge all).
  void SetApproxErrorTarget(double target);
  /// Scramble registry (introspection for tests and tools).
  const approx::SampleCatalog* sample_catalog() const {
    return &sample_catalog_;
  }
  /// Driver hook (cjdbc::Driver::RouteWrite): nodes that must apply
  /// this write synchronously, or nullopt to broadcast.
  std::optional<std::vector<int>> RouteWriteTargets(const std::string& sql);
  /// Recovery replay applied a write to `node` outside the broadcast
  /// bracket; `routed` says whether the original write was routed (the
  /// node owes a counter credit so ReplicasConsistent stays adjusted).
  void NoteRecoveryReplay(int node, bool routed);
  /// Drops every cached result (DDL, recovery replay).
  void InvalidateResultCache();
  share::ResultCache* result_cache() { return &result_cache_; }

  int num_nodes() const { return static_cast<int>(processors_.size()); }
  NodeProcessor* processor(int i) { return processors_[static_cast<size_t>(i)].get(); }
  const DataCatalog* data_catalog() const { return &catalog_; }
  DataCatalog* mutable_data_catalog() { return &catalog_; }
  const ApuamaStats& stats() const { return stats_; }
  /// The parse+rewrite plan cache (cache-level hit/miss counters).
  const PlanCache& plan_cache() const { return plan_cache_; }
  ConsistencyManager* consistency() { return &consistency_; }

  /// True when all node transaction counters are equal (replicas in
  /// the same committed state) — the paper's SVP precondition.
  bool ReplicasConsistent() const;

  /// Executes one SVP query end to end (used directly by the
  /// simulator driver and tests; ExecuteRead routes here).
  Result<engine::QueryResult> ExecuteSvp(const sql::SelectStmt& query);

  /// Executes one query with AVP: adaptive chunks per node, idle
  /// nodes stealing from loaded ones. Same eligibility rules and
  /// consistency barrier as SVP; more sub-queries, dynamic balance.
  Result<engine::QueryResult> ExecuteAvp(const sql::SelectStmt& query);

 private:
  /// Plan-cache routing for one read: lookup, or build + insert the
  /// entry on a miss (counts cache hit/miss stats). Errors only on a
  /// real rewrite failure, which is never cached.
  Result<std::shared_ptr<const PlanCache::Entry>> RouteRead(
      const std::string& sql);

  /// Where a write goes and which epochs it bumps.
  struct WriteRoute {
    /// Nodes that must apply the write; nullopt = broadcast.
    std::optional<std::vector<int>> targets;
    /// Barrier conflict scope (empty = global, the legacy behavior).
    std::vector<std::string> scope;
    /// Result-cache epoch keys to bump ("t", "t#f", or "" = global).
    std::vector<std::string> epoch_keys;
  };
  /// Parses the statement and, when fragmentation is active and every
  /// written key is statically attributable to fragments, routes it to
  /// the owning replica sets. Anything else degrades safely to a
  /// broadcast with whole-table (or global) scope.
  WriteRoute ComputeWriteRoute(const std::string& sql);

  /// Installed specs for the given tables, copied (an ALTER replacing
  /// a spec must not invalidate pointers a running query holds).
  /// Empty when the overlay is off.
  std::vector<FragmentationSpec> ActiveSpecsFor(
      const std::vector<std::string>& tables) const;

  /// Scoped-barrier read scope for a fragmented SVP dispatch: every
  /// referenced table, plus the fragments of fragmented tables that
  /// intersect the plan's predicate bounds.
  std::vector<std::string> FragmentedReadScope(
      const SvpPlan& plan, const std::vector<FragmentationSpec>& specs) const;

  /// Fragment-aware execution of a non-rewritable / passthrough read:
  /// picks a node covering every fragment (or materializes whole
  /// copies on one node and remaps the query). nullopt when the query
  /// touches no fragmented table (caller runs the normal path).
  std::optional<Result<engine::QueryResult>> ExecuteFragmentedPassthrough(
      int node_id, const std::string& sql);

  /// The fragmented SVP dispatch: prune intervals to the predicate
  /// bounds, let the exchange operator place (and if needed move)
  /// each interval, dispatch, compose. Called by ExecuteSvpPlan when
  /// the plan touches fragmented tables.
  Result<engine::QueryResult> ExecuteSvpPlanFragmented(
      SvpPlan plan, SvpProfile* profile,
      std::vector<FragmentationSpec> specs);

  /// Runs a rewritten plan end to end. Composition is per-query and
  /// streaming: no shared composer, no global lock. A non-null
  /// `profile` additionally collects EXPLAIN ANALYZE timings (the
  /// normal path passes null and pays nothing).
  Result<engine::QueryResult> ExecuteSvpPlan(SvpPlan plan,
                                             SvpProfile* profile = nullptr);
  Result<engine::QueryResult> ExecuteAvpPlan(SvpPlan plan,
                                             SvpProfile* profile = nullptr);

  /// Resubmits failed intervals in parallel across the survivors,
  /// rotating to a different node when a retry target dies too.
  /// `dispatched_to[i]` is the node interval i originally ran on; it
  /// is never picked as that interval's first retry target (a flaky
  /// node can still be listed as available).
  Status RetryFailedIntervals(const std::vector<std::string>& sub_sql,
                              const std::vector<int>& dispatched_to,
                              std::vector<size_t> pending,
                              StreamingComposition* sink);

  /// The approximate tier's read hook: parses `sql`, checks a
  /// scramble exists and the query is estimable, and runs it through
  /// ExecuteApproxPlan. nullopt = not applicable; the caller falls
  /// through to the exact path unchanged (counted as a fallback when
  /// the APPROX verb asked for approximation).
  std::optional<Result<engine::QueryResult>> MaybeExecuteApprox(
      const std::string& sql, SvpProfile* profile = nullptr);

  /// Runs one rewritten APPROX query: consistency barrier with a
  /// staleness check (synchronous rebuild while writes are blocked),
  /// SVP carve of the stats query over the scramble's key space,
  /// in-order streaming merge with the CLT stopping rule, and
  /// finalization into estimates + `__ci_lo`/`__ci_hi` columns.
  Result<engine::QueryResult> ExecuteApproxPlan(
      const approx::ApproxQuerySpec& spec, SvpProfile* profile);

  /// Materializes the scramble for `base` as `sample` on every node
  /// and registers/refreshes its partition space and catalog entry.
  /// Caller holds sample_build_mu_.
  Status BuildScramble(const std::string& base, const std::string& sample,
                       double ratio, int64_t seed, bool rebuild);

  cjdbc::ReplicaSet* replicas_;
  DataCatalog catalog_;
  ApuamaOptions options_;
  std::vector<std::unique_ptr<NodeProcessor>> processors_;
  SvpRewriter rewriter_;
  PlanCache plan_cache_;
  ConsistencyManager consistency_;
  std::unique_ptr<ThreadPool> dispatch_pool_;
  ApuamaStats stats_;
  share::ResultCache result_cache_;
  // Knobs read on every gated read; atomics because SET broadcasts
  // race with concurrent readers of the flags.
  std::atomic<bool> share_scans_on_;
  std::atomic<bool> result_cache_on_;
  std::atomic<bool> fragmentation_on_;
  std::atomic<exchange::Strategy> exchange_strategy_;
  // Approximate tier knobs + scramble registry. Builds serialize on
  // sample_build_mu_ (a rebuild during one query's barrier must not
  // race another query's rebuild of the same scramble).
  std::atomic<bool> approx_on_{false};
  std::atomic<int64_t> sample_seed_{42};
  std::atomic<double> approx_error_target_{0.0};
  approx::SampleCatalog sample_catalog_;
  std::mutex sample_build_mu_;
  // Epoch keys of the open logical write: recorded at admission
  // (the consistency manager keeps one broadcast open at a time),
  // consumed by the completion epoch bump.
  std::mutex write_table_mu_;
  std::vector<std::string> open_write_keys_;
  // Per-node counter credits: a routed write bumps only its targets'
  // transaction counters, so ReplicasConsistent compares
  // counter - credit instead of raw counters (all-zero credits make
  // that identical to the legacy raw comparison).
  std::unique_ptr<std::atomic<uint64_t>[]> write_credits_;
  // Disambiguates exchange temp-table names across concurrent queries.
  std::atomic<uint64_t> exchange_seq_{0};
  // Routes computed for the controller (RouteWriteTargets) are reused
  // by ExecuteWriteOn so both sides of a write agree on its targets
  // even if an ALTER ... FRAGMENT lands in between (a recompute could
  // otherwise wait on per-node statements that never arrive).
  std::mutex route_mu_;
  std::unordered_map<std::string, WriteRoute> route_cache_;
  // Fan-out (node count) of the most recent logical write, surfaced
  // by EXPLAIN ANALYZE as fragment/write_fanout.
  std::atomic<uint64_t> last_write_fanout_{0};
  // Contributes stats_ to obs::Registry dumps; the handle unregisters
  // on destruction so a dump never reads a freed engine.
  obs::Registry::ProviderHandle metrics_provider_;
};

/// cjdbc::Driver implementation that interposes the Apuama Engine —
/// plugging this into a Controller is the entire integration, exactly
/// the "no C-JDBC source change" property the paper claims.
class ApuamaDriver : public cjdbc::Driver {
 public:
  explicit ApuamaDriver(ApuamaEngine* engine) : engine_(engine) {}

  Result<std::unique_ptr<cjdbc::Connection>> Connect(int node_id) override;
  int num_nodes() const override { return engine_->num_nodes(); }
  share::WorkSharingHooks* work_sharing() override { return engine_; }
  std::optional<std::vector<int>> RouteWrite(
      const std::string& sql) override {
    return engine_->RouteWriteTargets(sql);
  }

 private:
  ApuamaEngine* engine_;
};

}  // namespace apuama

#endif  // APUAMA_APUAMA_APUAMA_ENGINE_H_

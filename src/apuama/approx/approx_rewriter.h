// Rewrites an eligible APPROX SELECT onto its base table's scramble.
//
// Eligibility (anything else falls back to the exact path, which is
// never an error): a single-table SELECT whose select list mixes
// GROUP BY expressions with SUM / COUNT(*) / AVG aggregates, no
// DISTINCT, no HAVING, no subqueries, and an ORDER BY that addresses
// output columns only. The rewrite produces one *stats query* over
// the scramble whose select list carries the moments every estimator
// needs — group keys, per-aggregate sum(e) and sum(e*e), and one
// shared count(*) — all decomposable, so the stock SVP rewriter
// carves it into `__skey` range sub-queries that merge on the
// streaming composer's fast path.
#ifndef APUAMA_APUAMA_APPROX_APPROX_REWRITER_H_
#define APUAMA_APUAMA_APPROX_APPROX_REWRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "apuama/approx/estimator.h"
#include "common/status.h"
#include "sql/ast.h"

namespace apuama::approx {

/// One rewritten aggregate of the original select list.
struct ApproxAggSpec {
  AggKind kind = AggKind::kSum;
  size_t item_index = 0;  // position in the original select list
  /// Column positions in the stats-query output row (-1 = unused;
  /// kCount uses only the shared count column).
  int sum_col = -1;
  int sumsq_col = -1;
};

/// The full rewrite product for one APPROX query.
struct ApproxQuerySpec {
  std::string base_table;    // lower-cased
  std::string sample_table;  // lower-cased
  /// The moments query over the scramble (exact SQL; the SVP layer
  /// adds the `__skey` range predicates per sub-query).
  std::string stats_sql;
  size_t num_group_cols = 0;  // stats columns 0..G-1 are group keys
  int count_col = -1;         // shared count(*) column position
  /// For each original select item: index into the stats row's group
  /// columns, or -1 when the item is an aggregate (see `aggs`).
  std::vector<int> item_to_group;
  std::vector<ApproxAggSpec> aggs;
  /// Output column names, mirroring exact execution's naming.
  std::vector<std::string> column_names;
  /// ORDER BY mapped to (output column slot, descending).
  std::vector<std::pair<int, bool>> order_by;
  int64_t limit = -1;
  int64_t offset = 0;
};

/// Builds the stats query for `query` over `sample_table`. Returns
/// Unsupported (with the reason) when the query is not eligible —
/// the caller falls back to exact execution.
Result<ApproxQuerySpec> BuildApproxQuery(const sql::SelectStmt& query,
                                         const std::string& base_table,
                                         const std::string& sample_table);

/// Cheap check: does `sql` start with the APPROX verb? Used on the
/// read hot path to skip the approximate tier without parsing.
bool StartsWithApproxVerb(const std::string& sql);

}  // namespace apuama::approx

#endif  // APUAMA_APUAMA_APPROX_APPROX_REWRITER_H_

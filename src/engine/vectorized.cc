#include "engine/vectorized.h"

#include <algorithm>
#include <cstddef>

namespace apuama::engine {

namespace {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;

// Integer arithmetic through unsigned casts: two's-complement wrap is
// defined behavior and produces the same bits the row path does for
// every input that does not overflow (and deterministic, UB-free bits
// when one does).
int64_t WrapAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) +
                              static_cast<uint64_t>(b));
}
int64_t WrapSub(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) -
                              static_cast<uint64_t>(b));
}
int64_t WrapMul(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) *
                              static_cast<uint64_t>(b));
}

// Value::Compare for two numeric-family lanes: both integral compares
// as int64, anything touching a double compares as double.
int CompareLane(const VecData& a, const VecData& b, size_t k) {
  if (a.type != ValueType::kDouble && b.type != ValueType::kDouble) {
    const int64_t x = a.i64[k], y = b.i64[k];
    return x < y ? -1 : x > y ? 1 : 0;
  }
  const double x = a.DoubleAt(k), y = b.DoubleAt(k);
  return x < y ? -1 : x > y ? 1 : 0;
}

bool ComparePasses(BinaryOp op, int c) {
  switch (op) {
    case BinaryOp::kEq:
      return c == 0;
    case BinaryOp::kNotEq:
      return c != 0;
    case BinaryOp::kLt:
      return c < 0;
    case BinaryOp::kLtEq:
      return c <= 0;
    case BinaryOp::kGt:
      return c > 0;
    default:  // kGtEq
      return c >= 0;
  }
}

// Resolves `e` to a dictionary-encoded string column of the chunk.
const storage::ColumnVector* DictColumn(const Expr& e,
                                        const Relation& header,
                                        const storage::ColumnarTable& chunk,
                                        int* slot) {
  if (e.kind != ExprKind::kColumnRef) return nullptr;
  const int s = header.FindSlot(e.table_qualifier, e.column_name);
  if (s < 0 || static_cast<size_t>(s) >= chunk.cols.size()) return nullptr;
  const storage::ColumnVector& col = chunk.cols[static_cast<size_t>(s)];
  if (!col.dict_encoded) return nullptr;
  *slot = s;
  return &col;
}

bool IsStringLit(const Expr& e) {
  return e.kind == ExprKind::kLiteral &&
         e.literal.type() == ValueType::kString;
}

// `lit op col` == `col MirrorCmp(op) lit`.
BinaryOp MirrorCmp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLtEq:
      return BinaryOp::kGtEq;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGtEq:
      return BinaryOp::kLtEq;
    default:  // kEq / kNotEq are symmetric
      return op;
  }
}

// Code interval [lo, hi) such that `dict[c] op s` holds exactly for
// codes in the interval (the dictionary is sorted in Value::Compare
// order). kNotEq keeps the equality interval and flips the pass
// sense via *negated.
void DictCmpRange(const std::vector<std::string>& dict, BinaryOp op,
                  const std::string& s, int32_t* lo, int32_t* hi,
                  bool* negated) {
  const int32_t n = static_cast<int32_t>(dict.size());
  const int32_t lb = static_cast<int32_t>(
      std::lower_bound(dict.begin(), dict.end(), s) - dict.begin());
  const int32_t ub = static_cast<int32_t>(
      std::upper_bound(dict.begin(), dict.end(), s) - dict.begin());
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNotEq:
      *lo = lb;
      *hi = ub;  // ub == lb when `s` is absent: empty interval
      *negated = op == BinaryOp::kNotEq;
      return;
    case BinaryOp::kLt:
      *lo = 0;
      *hi = lb;
      return;
    case BinaryOp::kLtEq:
      *lo = 0;
      *hi = ub;
      return;
    case BinaryOp::kGt:
      *lo = ub;
      *hi = n;
      return;
    default:  // kGtEq
      *lo = lb;
      *hi = n;
      return;
  }
}

// String predicates over a dictionary-encoded column: =, !=, <, <=,
// >, >= and BETWEEN against string literals, IN / NOT IN over
// literal lists. Returns nullptr when the shape does not translate
// (the caller falls back to the generic compile and then to row-wise
// eval).
std::unique_ptr<VecPredicate> CompileDictPredicate(
    const Expr& e, const Relation& header,
    const storage::ColumnarTable& chunk) {
  if (e.kind == ExprKind::kBinary && sql::IsComparison(e.binary_op) &&
      e.children.size() == 2) {
    int slot = -1;
    const storage::ColumnVector* col =
        DictColumn(*e.children[0], header, chunk, &slot);
    const Expr* lit = e.children[1].get();
    BinaryOp op = e.binary_op;
    if (col == nullptr) {
      col = DictColumn(*e.children[1], header, chunk, &slot);
      lit = e.children[0].get();
      op = MirrorCmp(op);
    }
    if (col == nullptr || !IsStringLit(*lit)) return nullptr;
    auto out = std::make_unique<VecPredicate>();
    out->kind = VecPredicate::Kind::kDictRange;
    out->dict_slot = slot;
    DictCmpRange(col->dict, op, lit->literal.str_val(), &out->dict_lo,
                 &out->dict_hi, &out->negated);
    return out;
  }
  if (e.kind == ExprKind::kBetween && e.children.size() == 3) {
    int slot = -1;
    const storage::ColumnVector* col =
        DictColumn(*e.children[0], header, chunk, &slot);
    if (col == nullptr || !IsStringLit(*e.children[1]) ||
        !IsStringLit(*e.children[2])) {
      return nullptr;
    }
    auto out = std::make_unique<VecPredicate>();
    out->kind = VecPredicate::Kind::kDictRange;
    out->dict_slot = slot;
    out->negated = e.negated;
    out->dict_lo = static_cast<int32_t>(
        std::lower_bound(col->dict.begin(), col->dict.end(),
                         e.children[1]->literal.str_val()) -
        col->dict.begin());
    out->dict_hi = static_cast<int32_t>(
        std::upper_bound(col->dict.begin(), col->dict.end(),
                         e.children[2]->literal.str_val()) -
        col->dict.begin());
    // lo > hi (bounds inverted) must pass nothing, not wrap: clamp.
    if (out->dict_hi < out->dict_lo) out->dict_hi = out->dict_lo;
    return out;
  }
  if (e.kind == ExprKind::kInList && !e.children.empty()) {
    int slot = -1;
    const storage::ColumnVector* col =
        DictColumn(*e.children[0], header, chunk, &slot);
    if (col == nullptr) return nullptr;
    std::vector<int32_t> codes;
    bool null_item = false;
    for (size_t i = 1; i < e.children.size(); ++i) {
      const Expr& item = *e.children[i];
      if (item.kind != ExprKind::kLiteral) return nullptr;
      if (item.literal.is_null()) {
        // x IN (..., NULL, ...): the NULL item can only turn FALSE
        // into NULL — both drop the row, so it is ignorable for IN.
        // For NOT IN it makes the predicate never-TRUE.
        null_item = true;
        continue;
      }
      if (item.literal.type() != ValueType::kString) {
        // A non-string literal never compares equal to a string
        // (Value::Compare ranks types), so it cannot match: drop it.
        continue;
      }
      const std::string& s = item.literal.str_val();
      auto it = std::lower_bound(col->dict.begin(), col->dict.end(), s);
      if (it != col->dict.end() && *it == s) {
        codes.push_back(static_cast<int32_t>(it - col->dict.begin()));
      }
      // Absent from the dictionary: no row can match; ignorable for
      // both IN and NOT IN.
    }
    auto out = std::make_unique<VecPredicate>();
    out->dict_slot = slot;
    if (e.negated && null_item) {
      // NOT IN with a NULL item is never TRUE: every row is FALSE
      // (matched) or NULL (unmatched, via the NULL compare) — encode
      // as the empty non-negated interval, which passes nothing.
      out->kind = VecPredicate::Kind::kDictRange;
      out->dict_lo = 0;
      out->dict_hi = 0;
      out->negated = false;
      return out;
    }
    std::sort(codes.begin(), codes.end());
    codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
    out->kind = VecPredicate::Kind::kDictIn;
    out->dict_codes = std::move(codes);
    out->negated = e.negated;
    return out;
  }
  return nullptr;
}

}  // namespace

std::unique_ptr<VecExpr> CompileVecExpr(const Expr& e,
                                        const Relation& header,
                                        const storage::ColumnarTable& chunk) {
  switch (e.kind) {
    case ExprKind::kColumnRef: {
      const int slot = header.FindSlot(e.table_qualifier, e.column_name);
      if (slot < 0 || static_cast<size_t>(slot) >= chunk.cols.size()) {
        return nullptr;
      }
      const storage::ColumnVector& col =
          chunk.cols[static_cast<size_t>(slot)];
      if (!col.materialized) return nullptr;
      auto out = std::make_unique<VecExpr>();
      out->kind = VecExpr::Kind::kCol;
      out->type = col.type;
      out->slot = slot;
      return out;
    }
    case ExprKind::kLiteral: {
      auto out = std::make_unique<VecExpr>();
      out->kind = VecExpr::Kind::kLit;
      switch (e.literal.type()) {
        case ValueType::kInt64:
          out->type = ValueType::kInt64;
          out->lit_i = e.literal.int_val();
          return out;
        case ValueType::kDate:
          out->type = ValueType::kDate;
          out->lit_i = e.literal.date_val();
          return out;
        case ValueType::kDouble:
          out->type = ValueType::kDouble;
          out->lit_d = e.literal.double_val();
          return out;
        case ValueType::kNull:
          // Every lane is NULL; the nominal type never reaches a
          // non-null computation.
          out->type = ValueType::kInt64;
          out->lit_null = true;
          return out;
        default:
          return nullptr;  // strings stay row-wise
      }
    }
    case ExprKind::kUnary: {
      if (e.unary_op != sql::UnaryOp::kNegate || e.children.size() != 1) {
        return nullptr;
      }
      auto a = CompileVecExpr(*e.children[0], header, chunk);
      if (a == nullptr) return nullptr;
      auto out = std::make_unique<VecExpr>();
      out->kind = VecExpr::Kind::kNeg;
      out->type = a->type == ValueType::kInt64 ? ValueType::kInt64
                                               : ValueType::kDouble;
      out->a = std::move(a);
      return out;
    }
    case ExprKind::kBinary: {
      const BinaryOp op = e.binary_op;
      if (op != BinaryOp::kAdd && op != BinaryOp::kSub &&
          op != BinaryOp::kMul && op != BinaryOp::kDiv) {
        return nullptr;
      }
      if (e.children.size() != 2) return nullptr;
      auto a = CompileVecExpr(*e.children[0], header, chunk);
      auto b = CompileVecExpr(*e.children[1], header, chunk);
      if (a == nullptr || b == nullptr) return nullptr;
      auto out = std::make_unique<VecExpr>();
      out->kind = VecExpr::Kind::kArith;
      out->op = op;
      // EvalArithmetic's type lattice, decided once: materialized
      // columns are type-homogeneous over non-null values, so the
      // per-row decision the row path makes is the same for every
      // lane.
      out->date_shift = a->type == ValueType::kDate &&
                        b->type == ValueType::kInt64 &&
                        (op == BinaryOp::kAdd || op == BinaryOp::kSub);
      out->both_int = !out->date_shift && op != BinaryOp::kDiv &&
                      a->type == ValueType::kInt64 &&
                      b->type == ValueType::kInt64;
      out->type = out->date_shift ? ValueType::kDate
                  : out->both_int ? ValueType::kInt64
                                  : ValueType::kDouble;
      out->a = std::move(a);
      out->b = std::move(b);
      return out;
    }
    default:
      return nullptr;
  }
}

std::unique_ptr<VecPredicate> CompileVecPredicate(
    const Expr& e, const Relation& header,
    const storage::ColumnarTable& chunk) {
  if (auto dict = CompileDictPredicate(e, header, chunk)) return dict;
  if (e.kind == ExprKind::kBinary && sql::IsComparison(e.binary_op)) {
    if (e.children.size() != 2) return nullptr;
    auto a = CompileVecExpr(*e.children[0], header, chunk);
    auto b = CompileVecExpr(*e.children[1], header, chunk);
    if (a == nullptr || b == nullptr) return nullptr;
    auto out = std::make_unique<VecPredicate>();
    out->kind = VecPredicate::Kind::kCmp;
    out->op = e.binary_op;
    out->a = std::move(a);
    out->b = std::move(b);
    return out;
  }
  if (e.kind == ExprKind::kBetween) {
    if (e.children.size() != 3) return nullptr;
    auto a = CompileVecExpr(*e.children[0], header, chunk);
    auto b = CompileVecExpr(*e.children[1], header, chunk);
    auto c = CompileVecExpr(*e.children[2], header, chunk);
    if (a == nullptr || b == nullptr || c == nullptr) return nullptr;
    auto out = std::make_unique<VecPredicate>();
    out->kind = VecPredicate::Kind::kBetween;
    out->negated = e.negated;
    out->a = std::move(a);
    out->b = std::move(b);
    out->c = std::move(c);
    return out;
  }
  return nullptr;
}

Status EvalVec(const VecExpr& e, const storage::ColumnarTable& chunk,
               const std::vector<uint32_t>& sel, VecData* out,
               uint64_t* cpu, uint64_t* vec_rows) {
  const size_t n = sel.size();
  *cpu += VecOps(n);
  *vec_rows += n;
  out->type = e.type;
  out->has_nulls = false;
  out->nulls.clear();
  out->i64.clear();
  out->f64.clear();
  switch (e.kind) {
    case VecExpr::Kind::kCol: {
      const storage::ColumnVector& col =
          chunk.cols[static_cast<size_t>(e.slot)];
      if (col.type == ValueType::kDouble) {
        out->f64.resize(n);
        for (size_t k = 0; k < n; ++k) out->f64[k] = col.f64[sel[k]];
      } else {
        out->i64.resize(n);
        for (size_t k = 0; k < n; ++k) out->i64[k] = col.i64[sel[k]];
      }
      if (col.has_nulls) {
        out->has_nulls = true;
        out->nulls.resize(n);
        for (size_t k = 0; k < n; ++k) out->nulls[k] = col.nulls[sel[k]];
      }
      return Status::OK();
    }
    case VecExpr::Kind::kLit: {
      if (e.type == ValueType::kDouble) {
        out->f64.assign(n, e.lit_d);
      } else {
        out->i64.assign(n, e.lit_i);
      }
      if (e.lit_null) {
        out->has_nulls = true;
        out->nulls.assign(n, 1);
      }
      return Status::OK();
    }
    case VecExpr::Kind::kNeg: {
      VecData va;
      APUAMA_RETURN_NOT_OK(EvalVec(*e.a, chunk, sel, &va, cpu, vec_rows));
      out->has_nulls = va.has_nulls;
      out->nulls = va.nulls;
      if (e.type == ValueType::kInt64) {
        out->i64.resize(n);
        for (size_t k = 0; k < n; ++k) {
          out->i64[k] = WrapSub(0, va.i64[k]);
        }
      } else {
        out->f64.resize(n);
        for (size_t k = 0; k < n; ++k) out->f64[k] = -va.DoubleAt(k);
      }
      return Status::OK();
    }
    case VecExpr::Kind::kArith: {
      VecData va, vb;
      APUAMA_RETURN_NOT_OK(EvalVec(*e.a, chunk, sel, &va, cpu, vec_rows));
      APUAMA_RETURN_NOT_OK(EvalVec(*e.b, chunk, sel, &vb, cpu, vec_rows));
      if (va.has_nulls || vb.has_nulls) {
        out->has_nulls = true;
        out->nulls.resize(n);
        for (size_t k = 0; k < n; ++k) {
          out->nulls[k] = va.IsNull(k) || vb.IsNull(k) ? 1 : 0;
        }
      }
      if (e.date_shift || e.both_int) {
        out->i64.resize(n);
        switch (e.op) {
          case BinaryOp::kAdd:
            for (size_t k = 0; k < n; ++k) {
              out->i64[k] = WrapAdd(va.i64[k], vb.i64[k]);
            }
            break;
          case BinaryOp::kSub:
            for (size_t k = 0; k < n; ++k) {
              out->i64[k] = WrapSub(va.i64[k], vb.i64[k]);
            }
            break;
          default:  // kMul (kDiv never takes the integer lane)
            for (size_t k = 0; k < n; ++k) {
              out->i64[k] = WrapMul(va.i64[k], vb.i64[k]);
            }
            break;
        }
        return Status::OK();
      }
      out->f64.resize(n);
      switch (e.op) {
        case BinaryOp::kAdd:
          for (size_t k = 0; k < n; ++k) {
            out->f64[k] = va.DoubleAt(k) + vb.DoubleAt(k);
          }
          break;
        case BinaryOp::kSub:
          for (size_t k = 0; k < n; ++k) {
            out->f64[k] = va.DoubleAt(k) - vb.DoubleAt(k);
          }
          break;
        case BinaryOp::kMul:
          for (size_t k = 0; k < n; ++k) {
            out->f64[k] = va.DoubleAt(k) * vb.DoubleAt(k);
          }
          break;
        default: {  // kDiv
          for (size_t k = 0; k < n; ++k) {
            if (out->IsNull(k)) continue;  // NULL propagates before the check
            const double db = vb.DoubleAt(k);
            if (db == 0) {
              return Status::InvalidArgument("division by zero");
            }
            out->f64[k] = va.DoubleAt(k) / db;
          }
          break;
        }
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable vec expr kind");
}

Status FilterVec(const VecPredicate& p, const storage::ColumnarTable& chunk,
                 std::vector<uint32_t>* sel, uint64_t* cpu,
                 uint64_t* vec_rows, uint64_t* dict_hits) {
  const size_t n = sel->size();
  if (p.kind == VecPredicate::Kind::kDictRange ||
      p.kind == VecPredicate::Kind::kDictIn) {
    // Code-space kernel: one integer compare (or sorted-set probe)
    // per selected row, straight off the code array. One dictionary
    // lookup already happened at compile time.
    const storage::ColumnVector& col =
        chunk.cols[static_cast<size_t>(p.dict_slot)];
    *cpu += VecOps(n);
    *vec_rows += n;
    if (dict_hits != nullptr) *dict_hits += n;
    std::vector<uint32_t> keep;
    keep.reserve(n);
    if (p.kind == VecPredicate::Kind::kDictRange) {
      for (size_t k = 0; k < n; ++k) {
        const uint32_t pos = (*sel)[k];
        if (col.IsNull(pos)) continue;  // NULL drops, three-valued WHERE
        const int32_t c = col.codes[pos];
        if ((p.dict_lo <= c && c < p.dict_hi) != p.negated) {
          keep.push_back(pos);
        }
      }
    } else {
      for (size_t k = 0; k < n; ++k) {
        const uint32_t pos = (*sel)[k];
        if (col.IsNull(pos)) continue;
        const bool in = std::binary_search(p.dict_codes.begin(),
                                           p.dict_codes.end(),
                                           col.codes[pos]);
        if (in != p.negated) keep.push_back(pos);
      }
    }
    *sel = std::move(keep);
    return Status::OK();
  }
  VecData va, vb, vc;
  APUAMA_RETURN_NOT_OK(EvalVec(*p.a, chunk, *sel, &va, cpu, vec_rows));
  APUAMA_RETURN_NOT_OK(EvalVec(*p.b, chunk, *sel, &vb, cpu, vec_rows));
  std::vector<uint32_t> keep;
  keep.reserve(n);
  if (p.kind == VecPredicate::Kind::kCmp) {
    *cpu += VecOps(n);
    *vec_rows += n;
    for (size_t k = 0; k < n; ++k) {
      if (va.IsNull(k) || vb.IsNull(k)) continue;
      if (ComparePasses(p.op, CompareLane(va, vb, k))) {
        keep.push_back((*sel)[k]);
      }
    }
  } else {
    APUAMA_RETURN_NOT_OK(EvalVec(*p.c, chunk, *sel, &vc, cpu, vec_rows));
    *cpu += 2 * VecOps(n);
    *vec_rows += n;
    for (size_t k = 0; k < n; ++k) {
      if (va.IsNull(k) || vb.IsNull(k) || vc.IsNull(k)) continue;
      const bool in =
          CompareLane(va, vb, k) >= 0 && CompareLane(va, vc, k) <= 0;
      if (in != p.negated) keep.push_back((*sel)[k]);
    }
  }
  *sel = std::move(keep);
  return Status::OK();
}

}  // namespace apuama::engine

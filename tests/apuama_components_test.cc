// Direct unit tests for Apuama's smaller components: NodeProcessor
// (connection pool, forced-index bracket, counters), the ApuamaDriver
// connection routing, and engine-level statistics.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "apuama/apuama_engine.h"
#include "apuama/cluster_facade.h"
#include "apuama/node_processor.h"
#include "cjdbc/connection.h"
#include "tests/test_util.h"
#include "tpch/dbgen.h"
#include "tpch/tpch_catalog.h"

namespace apuama {
namespace {

std::unique_ptr<cjdbc::ReplicaSet> SmallCluster(int nodes) {
  auto replicas = std::make_unique<cjdbc::ReplicaSet>(
      nodes, cjdbc::ReplicaSet::NodeOptions{});
  for (int i = 0; i < nodes; ++i) {
    auto r = replicas->ExecuteOn(
        i, "create table t (a bigint not null, b bigint, primary key (a))");
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(
        replicas->ExecuteOn(i, "insert into t values (1, 10), (2, 20)")
            .ok());
  }
  return replicas;
}

TEST(NodeProcessorTest, PassThroughExecution) {
  auto replicas = SmallCluster(1);
  NodeProcessor np(0, replicas.get(), NodeProcessorOptions{});
  auto r = np.Execute("select sum(b) from t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].int_val(), 30);
  EXPECT_EQ(np.statements_executed(), 1u);
  EXPECT_EQ(np.subqueries_executed(), 0u);
}

TEST(NodeProcessorTest, SubqueryForcesIndexAndRestoresSetting) {
  auto replicas = SmallCluster(1);
  NodeProcessor np(0, replicas.get(), NodeProcessorOptions{});
  engine::Database* db = replicas->node(0);
  ASSERT_TRUE(db->settings()->enable_seqscan);
  auto r = np.ExecuteSubquery("select sum(b) from t where a >= 1 and a < 2");
  ASSERT_TRUE(r.ok());
  // Forced during execution; restored after.
  EXPECT_TRUE(db->settings()->enable_seqscan);
  EXPECT_FALSE(r->stats.used_seq_scan);
  EXPECT_EQ(np.subqueries_executed(), 1u);
}

TEST(NodeProcessorTest, ForcingDisabledByOption) {
  auto replicas = SmallCluster(1);
  NodeProcessorOptions opts;
  opts.force_index_for_svp = false;
  NodeProcessor np(0, replicas.get(), opts);
  // Tiny table: the planner naturally seq-scans when not forced.
  auto r = np.ExecuteSubquery("select sum(b) from t where a >= 1 and a < 2");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->stats.used_seq_scan);
}

TEST(NodeProcessorTest, PoolBoundsConcurrency) {
  auto replicas = SmallCluster(1);
  NodeProcessorOptions opts;
  opts.pool_size = 2;
  NodeProcessor np(0, replicas.get(), opts);
  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      auto r = np.Execute("select count(*) from t");
      if (r.ok()) completed.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(completed.load(), 8);  // all served despite the bound
}

TEST(NodeProcessorTest, TransactionCounterTracksNode) {
  auto replicas = SmallCluster(1);
  NodeProcessor np(0, replicas.get(), NodeProcessorOptions{});
  uint64_t before = np.TransactionCounter();
  ASSERT_TRUE(np.Execute("insert into t values (3, 30)").ok());
  EXPECT_EQ(np.TransactionCounter(), before + 1);
}

TEST(ApuamaDriverTest, RoutesByStatementKind) {
  const tpch::TpchData data(tpch::DbgenOptions{.scale_factor = 0.001});
  cjdbc::ReplicaSet replicas(2, cjdbc::ReplicaSet::NodeOptions{});
  ASSERT_TRUE(data.LoadIntoReplicas(&replicas).ok());
  ApuamaEngine engine(&replicas, tpch::MakeTpchCatalog(data, 100));
  ApuamaDriver driver(&engine);
  ASSERT_EQ(driver.num_nodes(), 2);
  auto conn = driver.Connect(0);
  ASSERT_TRUE(conn.ok());

  // Fact-table read: intra-query path.
  ASSERT_TRUE((*conn)->Execute("select count(*) from lineitem").ok());
  EXPECT_EQ(engine.stats().svp_queries, 1u);
  // Dimension read: inter-query path.
  ASSERT_TRUE((*conn)->Execute("select count(*) from nation").ok());
  EXPECT_EQ(engine.stats().passthrough_reads, 1u);
  // Session control passes straight to the node.
  ASSERT_TRUE((*conn)->Execute("set enable_seqscan = on").ok());
  // EXPLAIN classifies as a read and answers on the node.
  auto ex = (*conn)->Execute("explain select count(*) from nation");
  ASSERT_TRUE(ex.ok());
  EXPECT_EQ(ex->column_names[0], "plan");
  // Bad node id refused.
  EXPECT_EQ(driver.Connect(7).status().code(), StatusCode::kUnavailable);
}

TEST(ApuamaEngineTest, StatsAccumulate) {
  const tpch::TpchData data(tpch::DbgenOptions{.scale_factor = 0.001});
  cjdbc::ReplicaSet replicas(2, cjdbc::ReplicaSet::NodeOptions{});
  ASSERT_TRUE(data.LoadIntoReplicas(&replicas).ok());
  ApuamaEngine engine(&replicas, tpch::MakeTpchCatalog(data, 100));
  ASSERT_TRUE(engine.ExecuteRead(0, "select count(*) from orders").ok());
  ASSERT_TRUE(engine.ExecuteRead(
                    1, "select count(distinct l_suppkey) from lineitem")
                  .ok());
  ASSERT_TRUE(engine.ExecuteRead(0, "select count(*) from region").ok());
  const auto& st = engine.stats();
  EXPECT_EQ(st.svp_queries, 1u);
  EXPECT_EQ(st.non_rewritable, 1u);     // count(distinct)
  EXPECT_EQ(st.passthrough_reads, 2u);  // fallback + region
  EXPECT_GT(st.partial_rows_total, 0u);
}

TEST(ClusterFacadeTest, EndToEndThroughTheFacade) {
  auto cluster = ApuamaCluster::Create({.num_nodes = 3});
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)
                  ->ExecuteScript(
                      "create table f (k bigint not null, v double, "
                      "primary key (k));"
                      "insert into f values (1, 1.5), (2, 2.5), (3, 3.5),"
                      " (4, 4.5), (5, 5.5), (6, 6.5), (7, 7.5), (8, 8.5)")
                  .ok());
  VirtualPartitionSpace space;
  space.name = "k";
  space.members.push_back({"f", "k"});
  space.min_value = 1;
  space.max_value = 8;
  ASSERT_TRUE((*cluster)->RegisterPartitionSpace(std::move(space)).ok());

  auto r = (*cluster)->Execute("select sum(v), count(*) from f");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(r->rows[0][0].double_val(), 40.0);
  EXPECT_EQ(r->rows[0][1].int_val(), 8);
  EXPECT_EQ((*cluster)->stats().svp_queries, 1u);

  // Writes reach every replica through the same entry point.
  ASSERT_TRUE((*cluster)->Execute("insert into f values (9, 9.5)").ok());
  for (int i = 0; i < (*cluster)->num_nodes(); ++i) {
    auto count =
        (*cluster)->replicas()->ExecuteOn(i, "select count(*) from f");
    EXPECT_EQ(count->rows[0][0].int_val(), 9);
  }
  // Domain update widens future partitions.
  ASSERT_TRUE((*cluster)->UpdatePartitionDomain("k", 1, 9).ok());
  auto r2 = (*cluster)->Execute("select count(*) from f");
  EXPECT_EQ(r2->rows[0][0].int_val(), 9);
}

TEST(ClusterFacadeTest, ScriptStopsAtFirstError) {
  auto cluster = ApuamaCluster::Create({.num_nodes = 2});
  ASSERT_TRUE(cluster.ok());
  Status s = (*cluster)->ExecuteScript(
      "create table a (x bigint); select * from nope; "
      "create table b (y bigint)");
  EXPECT_FALSE(s.ok());
  // First statement applied, third never ran.
  EXPECT_TRUE((*cluster)->replicas()->node(0)->catalog()->HasTable("a"));
  EXPECT_FALSE((*cluster)->replicas()->node(0)->catalog()->HasTable("b"));
}

TEST(ClusterFacadeTest, InvalidOptionsRejected) {
  EXPECT_FALSE(ApuamaCluster::Create({.num_nodes = 0}).ok());
}

TEST(ApuamaEngineTest, BadNodeIdsRejected) {
  const tpch::TpchData data(tpch::DbgenOptions{.scale_factor = 0.001});
  cjdbc::ReplicaSet replicas(2, cjdbc::ReplicaSet::NodeOptions{});
  ASSERT_TRUE(data.LoadIntoReplicas(&replicas).ok());
  ApuamaEngine engine(&replicas, tpch::MakeTpchCatalog(data));
  EXPECT_FALSE(engine.ExecuteRead(-1, "select 1").ok());
  EXPECT_FALSE(engine.ExecuteRead(2, "select 1").ok());
  EXPECT_FALSE(engine.ExecuteWriteOn(5, "delete from orders").ok());
}

}  // namespace
}  // namespace apuama

#include "storage/column_store.h"

#include <algorithm>

namespace apuama::storage {

namespace {

// Materializes one schema column out of the row heap. Returns the
// column with materialized == false when the column's runtime values
// cannot be represented losslessly in a single typed array.
ColumnVector BuildColumn(const Table& t, size_t col) {
  ColumnVector out;
  const ValueType decl = t.schema().column(col).type;
  const size_t n = t.num_rows();
  out.type = decl;
  switch (decl) {
    case ValueType::kInt64:
    case ValueType::kDate: {
      out.i64.resize(n, 0);
      for (size_t i = 0; i < n; ++i) {
        const Value& v = t.row(i)[col];
        if (v.is_null()) {
          if (!out.has_nulls) {
            out.has_nulls = true;
            out.nulls.assign(n, 0);
          }
          out.nulls[i] = 1;
          continue;
        }
        out.i64[i] = decl == ValueType::kDate ? v.date_val() : v.int_val();
      }
      out.materialized = true;
      return out;
    }
    case ValueType::kDouble: {
      // ValidateRow admits kInt64 into kDouble columns, and the
      // runtime type drives every promotion decision the row path
      // makes. A type-homogeneous column still vectorizes: all-double
      // lands in f64, all-int lands in i64 *typed kInt64* (the exact
      // Values the heap holds). Only a genuine int/double mix keeps
      // the column row-wise — a single typed array would erase the
      // per-row distinction.
      bool saw_double = false, saw_int = false;
      for (size_t i = 0; i < n; ++i) {
        const Value& v = t.row(i)[col];
        if (v.is_null()) continue;
        (v.type() == ValueType::kDouble ? saw_double : saw_int) = true;
        if (saw_double && saw_int) return ColumnVector{};
      }
      const bool as_int = saw_int;  // all non-null values are kInt64
      if (as_int) {
        out.type = ValueType::kInt64;
        out.i64.resize(n, 0);
      } else {
        out.f64.resize(n, 0.0);
      }
      for (size_t i = 0; i < n; ++i) {
        const Value& v = t.row(i)[col];
        if (v.is_null()) {
          if (!out.has_nulls) {
            out.has_nulls = true;
            out.nulls.assign(n, 0);
          }
          out.nulls[i] = 1;
          continue;
        }
        if (as_int) {
          out.i64[i] = v.int_val();
        } else {
          out.f64[i] = v.double_val();
        }
      }
      out.materialized = true;
      return out;
    }
    case ValueType::kString: {
      // Dictionary encoding: sorted distinct values + per-row codes.
      // `materialized` stays false — expressions keep gathering heap
      // Values — but predicates compile to code-space compares.
      for (size_t i = 0; i < n; ++i) {
        const Value& v = t.row(i)[col];
        if (!v.is_null() && v.type() != ValueType::kString) {
          return out;  // defensive: heterogenous column stays row-wise
        }
      }
      out.dict.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        const Value& v = t.row(i)[col];
        if (!v.is_null()) out.dict.push_back(v.str_val());
      }
      std::sort(out.dict.begin(), out.dict.end());
      out.dict.erase(std::unique(out.dict.begin(), out.dict.end()),
                     out.dict.end());
      out.codes.resize(n, 0);
      for (size_t i = 0; i < n; ++i) {
        const Value& v = t.row(i)[col];
        if (v.is_null()) {
          if (!out.has_nulls) {
            out.has_nulls = true;
            out.nulls.assign(n, 0);
          }
          out.nulls[i] = 1;
          continue;
        }
        out.codes[i] = static_cast<int32_t>(
            std::lower_bound(out.dict.begin(), out.dict.end(),
                             v.str_val()) -
            out.dict.begin());
      }
      out.dict_encoded = true;
      return out;
    }
    default:
      // Anything else stays row-wise.
      return out;
  }
}

}  // namespace

ColumnStore::GetResult ColumnStore::Get(const Table& t) {
  GetResult r;
  auto it = chunks_.find(t.id());
  const bool have = it != chunks_.end();
  if (have && it->second->data_version == t.data_version()) {
    r.chunk = it->second.get();
    return r;
  }
  auto chunk = std::make_unique<ColumnarTable>();
  chunk->data_version = t.data_version();
  chunk->num_rows = t.num_rows();
  chunk->cols.reserve(t.schema().num_columns());
  for (size_t c = 0; c < t.schema().num_columns(); ++c) {
    chunk->cols.push_back(BuildColumn(t, c));
  }
  r.built = !have;
  r.rebuilt = have;
  r.chunk = chunk.get();
  chunks_[t.id()] = std::move(chunk);
  return r;
}

}  // namespace apuama::storage

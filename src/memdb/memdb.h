// In-memory result-composition database — the HSQLDB stand-in.
//
// The paper's Apuama stores SVP partial results in HSQLDB, "a fast
// in-memory DBMS", and runs the composition (re-aggregation, global
// sort, limit) as a query there. MemDb plays that role: it wraps an
// engine::Database configured with an unbounded buffer pool, plus
// helpers to load QueryResult partials as tables.
#ifndef APUAMA_MEMDB_MEMDB_H_
#define APUAMA_MEMDB_MEMDB_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/database.h"
#include "engine/query_result.h"

namespace apuama::memdb {

class MemDb {
 public:
  MemDb();

  /// Creates (or replaces) a table whose schema is inferred from the
  /// partial results' column names and the non-null values of each
  /// column (see InferColumnType), then loads all rows of every
  /// partial into it. All partials must share the column layout of
  /// the first.
  Status LoadPartials(const std::string& table_name,
                      const std::vector<const engine::QueryResult*>& partials);

  /// Runs a (composition) query.
  Result<engine::QueryResult> Execute(const std::string& sql);

  /// Drops a table if it exists (between compositions).
  void DropIfExists(const std::string& table_name);

  /// Total rows currently held (introspection / composer stats).
  size_t TotalRows(const std::string& table_name) const;

  engine::Database* database() { return db_.get(); }

 private:
  std::unique_ptr<engine::Database> db_;
};

/// Infers a column type from the values in a column across *all*
/// partials (a node whose range matched nothing returns all-NULL
/// columns). Integer values promote to DOUBLE if any double appears;
/// all-null columns become STRING. A column mixing numeric and
/// non-numeric values (or two different non-numeric types) across
/// partials is InvalidArgument — there is no type every value fits.
Result<ValueType> InferColumnType(
    const std::vector<const engine::QueryResult*>& partials, size_t col);

}  // namespace apuama::memdb

#endif  // APUAMA_MEMDB_MEMDB_H_

#include "types/schema.h"

#include "common/string_util.h"

namespace apuama {

size_t RowByteSize(const Row& row) {
  size_t n = 8;  // header
  for (const Value& v : row) n += v.ByteSize();
  return n;
}

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (EqualsIgnoreCase(cols_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::AddColumn(Column col) {
  if (FindColumn(col.name) >= 0) {
    return Status::AlreadyExists("duplicate column: " + col.name);
  }
  cols_.push_back(std::move(col));
  return Status::OK();
}

Status Schema::ValidateRow(const Row& row) const {
  if (row.size() != cols_.size()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu values, schema has %zu columns", row.size(),
                  cols_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Value& v = row[i];
    const Column& c = cols_[i];
    if (v.is_null()) {
      if (c.not_null) {
        return Status::ConstraintViolation("NULL in NOT NULL column " +
                                           c.name);
      }
      continue;
    }
    bool ok = v.type() == c.type ||
              (c.type == ValueType::kDouble && v.type() == ValueType::kInt64);
    if (!ok) {
      return Status::InvalidArgument(
          StrFormat("column %s expects %s, got %s", c.name.c_str(),
                    ValueTypeName(c.type), ValueTypeName(v.type())));
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(cols_.size());
  for (const Column& c : cols_) {
    std::string p = c.name + " " + ValueTypeName(c.type);
    if (c.not_null) p += " NOT NULL";
    parts.push_back(std::move(p));
  }
  return Join(parts, ", ");
}

}  // namespace apuama

#include "cjdbc/load_balancer.h"

namespace apuama::cjdbc {

int LoadBalancer::LeastPendingLocked(
    const std::vector<int>& counts,
    const std::optional<uint64_t>& affinity) {
  int best = counts[0];
  for (size_t i = 1; i < counts.size(); ++i) {
    if (counts[i] < best) best = counts[i];
  }
  std::vector<int> tied;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == best) tied.push_back(static_cast<int>(i));
  }
  if (tied.size() == 1) return tied[0];
  if (affinity.has_value()) {
    // Fingerprint affinity: identical queries keep landing on the
    // same backend (warms its caches) as long as load allows.
    return tied[static_cast<size_t>(*affinity % tied.size())];
  }
  // Rotate across the tied set so equal load spreads instead of
  // hot-spotting the lowest index.
  int chosen = tied[static_cast<size_t>(rr_tie_) % tied.size()];
  rr_tie_ = (rr_tie_ + 1) % static_cast<int>(counts.size());
  return chosen;
}

int LoadBalancer::Acquire(std::optional<uint64_t> affinity) {
  std::lock_guard<std::mutex> lock(mu_);
  int chosen = 0;
  switch (policy_) {
    case BalancePolicy::kLeastPending: {
      std::vector<int> counts;
      counts.reserve(pending_.size());
      for (const auto& p : pending_) counts.push_back(p.load());
      chosen = LeastPendingLocked(counts, affinity);
      break;
    }
    case BalancePolicy::kRoundRobin:
      chosen = rr_next_;
      rr_next_ = (rr_next_ + 1) % num_nodes();
      break;
    case BalancePolicy::kRandom:
      chosen = static_cast<int>(rng_.Uniform(0, num_nodes() - 1));
      break;
  }
  ++pending_[static_cast<size_t>(chosen)];
  return chosen;
}

void LoadBalancer::Release(int node_id) {
  auto& p = pending_[static_cast<size_t>(node_id)];
  int cur = p.load();
  while (cur > 0 && !p.compare_exchange_weak(cur, cur - 1)) {
  }
}

int LoadBalancer::Choose(const std::vector<int>& pending_counts,
                         std::optional<uint64_t> affinity) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (policy_) {
    case BalancePolicy::kLeastPending:
      return LeastPendingLocked(pending_counts, affinity);
    case BalancePolicy::kRoundRobin: {
      int chosen = rr_next_;
      rr_next_ = (rr_next_ + 1) % static_cast<int>(pending_counts.size());
      return chosen;
    }
    case BalancePolicy::kRandom:
      return static_cast<int>(
          rng_.Uniform(0, static_cast<int64_t>(pending_counts.size()) - 1));
  }
  return 0;
}

}  // namespace apuama::cjdbc

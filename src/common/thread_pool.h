// Fixed-size worker pool used by the Apuama Intra-Query Executor to
// dispatch SVP sub-queries to node processors concurrently, by the
// workload runner for client streams, and (via ParallelFor) by the
// engine's morsel-driven intra-node executor.
#ifndef APUAMA_COMMON_THREAD_POOL_H_
#define APUAMA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace apuama {

/// A simple FIFO thread pool. Tasks are std::function<void()>.
/// Destruction drains queued tasks before joining workers.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for its completion.
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Countdown latch: Wait() blocks until CountDown() has been called
/// `count` times.
class Latch {
 public:
  explicit Latch(int count) : count_(count) {}

  void CountDown();
  void Wait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_;
};

/// Go-style wait group: Add() before handing work out, Done() as each
/// piece finishes, Wait() until the count returns to zero. Unlike
/// Latch the count can grow while waiters are parked.
class WaitGroup {
 public:
  void Add(int n = 1);
  void Done();
  void Wait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_ = 0;
};

/// Runs body(i) for every i in [begin, end) using `pool` workers as
/// helpers, with the calling thread participating. Safe to call from
/// inside a pool task (the caller always makes progress on its own,
/// so a saturated pool degrades to inline execution instead of
/// deadlocking). Returns the first non-OK Status produced by any
/// invocation; once an error is observed, unstarted indices are
/// skipped. Exceptions thrown by `body` are rethrown on the calling
/// thread. `pool` may be null: the loop then runs inline.
Status ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                   const std::function<Status(size_t)>& body);

}  // namespace apuama

#endif  // APUAMA_COMMON_THREAD_POOL_H_

#include "engine/executor.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <map>
#include <set>
#include <unordered_map>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "engine/database.h"
#include "engine/vectorized.h"
#include "obs/trace.h"
#include "storage/column_store.h"
#include "storage/table.h"

namespace apuama::engine {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;
using sql::SelectStmt;

const char* AccessPathName(AccessPath p) {
  switch (p) {
    case AccessPath::kSeqScan:
      return "SeqScan";
    case AccessPath::kClusteredRange:
      return "ClusteredRange";
    case AccessPath::kSecondaryIndex:
      return "SecondaryIndex";
  }
  return "?";
}

struct Executor::FromBinding {
  std::string binding;           // alias or table name, lower-cased
  const storage::Table* table = nullptr;
};

struct Executor::ConjunctInfo {
  const Expr* expr = nullptr;
  std::set<std::string> bindings;  // FROM bindings referenced
  bool uses_outer = false;         // references an enclosing scope
  bool is_subquery_pred = false;   // EXISTS / IN-subquery node
  bool applied = false;
};

namespace {

// Hash a key tuple for join hash tables.
struct RowHash {
  size_t operator()(const Row& r) const {
    size_t h = 0x9e3779b9;
    for (const Value& v : r) h = h * 1315423911u + v.Hash();
    return h;
  }
};
struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};

// A subquery's own FROM tables, masking column refs that belong to
// the inner scope during binding collection.
struct MaskEntry {
  std::string binding;                   // alias or table name
  const storage::Table* table = nullptr; // null if unknown
};

bool ResolvesInMask(const Expr& e, const std::vector<MaskEntry>& mask) {
  for (const auto& m : mask) {
    if (!e.table_qualifier.empty()) {
      if (EqualsIgnoreCase(m.binding, e.table_qualifier)) return true;
    } else if (m.table != nullptr &&
               m.table->schema().FindColumn(e.column_name) >= 0) {
      return true;
    }
  }
  return false;
}

// Which FROM bindings does an expression reference? Descends into
// subqueries (EXISTS / IN / scalar) with the subquery's own tables
// masked, so correlated references back to our FROM are attributed
// correctly. Column refs that resolve nowhere are assumed to come
// from an enclosing scope (correlated subquery) and set *uses_outer.
void CollectBindings(const Expr& e, const storage::Catalog* catalog,
                     const std::function<int(const Expr&)>& attribute,
                     std::set<std::string>* out, bool* uses_outer,
                     const std::vector<std::string>& binding_names,
                     std::vector<MaskEntry>* mask) {
  if (e.kind == ExprKind::kColumnRef) {
    if (ResolvesInMask(e, *mask)) return;  // inner-scope reference
    int idx = attribute(e);
    if (idx >= 0) {
      out->insert(binding_names[static_cast<size_t>(idx)]);
    } else {
      *uses_outer = true;
    }
    return;
  }
  for (const auto& c : e.children) {
    CollectBindings(*c, catalog, attribute, out, uses_outer, binding_names,
                    mask);
  }
  if (e.case_else) {
    CollectBindings(*e.case_else, catalog, attribute, out, uses_outer,
                    binding_names, mask);
  }
  if (e.subquery) {
    size_t mask_base = mask->size();
    for (const auto& ref : e.subquery->from) {
      MaskEntry entry;
      entry.binding = ToLower(ref.binding());
      auto t = catalog->GetTable(ref.table);
      entry.table = t.ok() ? *t : nullptr;
      mask->push_back(std::move(entry));
    }
    auto walk_sub = [&](const sql::ExprPtr& p) {
      if (p) {
        CollectBindings(*p, catalog, attribute, out, uses_outer,
                        binding_names, mask);
      }
    };
    for (const auto& item : e.subquery->items) walk_sub(item.expr);
    walk_sub(e.subquery->where);
    for (const auto& g : e.subquery->group_by) walk_sub(g);
    walk_sub(e.subquery->having);
    for (const auto& o : e.subquery->order_by) walk_sub(o.expr);
    mask->resize(mask_base);
  }
}

void CollectBindings(const Expr& e, const storage::Catalog* catalog,
                     const std::function<int(const Expr&)>& attribute,
                     std::set<std::string>* out, bool* uses_outer,
                     const std::vector<std::string>& binding_names) {
  std::vector<MaskEntry> mask;
  CollectBindings(e, catalog, attribute, out, uses_outer, binding_names,
                  &mask);
}

// Planner page-cost factor for index-driven paths relative to a
// sequential scan (PostgreSQL's random_page_cost=4 vs
// seq_page_cost=1). This is why an optimizer may prefer a full scan
// over the virtual partition's index range — the behaviour Apuama
// suppresses with `SET enable_seqscan = off` (paper section 3).
constexpr double kIndexPageCostFactor = 4.0;

// Evaluates an expression that must not depend on the current table
// (literal or outer-scope reference). Returns error if unresolvable.
Result<Value> EvalOuterOnly(const Expr& e, const EvalScope* outer,
                            uint64_t* cpu) {
  EvalContext ctx;
  ctx.scope = outer;
  ctx.cpu_ops = cpu;
  return Eval(e, ctx);
}

struct Bound {
  bool present = false;
  Value value;
  bool inclusive = true;
};

// Aggregate accumulator.
struct AggAcc {
  double dsum = 0;
  int64_t isum = 0;
  bool any_double = false;
  uint64_t count = 0;        // non-null inputs (or all rows for count(*))
  bool has_value = false;
  Value min_v, max_v;
  std::set<Value> distinct;  // only for DISTINCT aggregates
};

void AggUpdate(AggAcc* acc, const Expr& agg, const Value& v) {
  if (agg.star_arg) {
    ++acc->count;
    return;
  }
  if (v.is_null()) return;
  if (agg.distinct) {
    acc->distinct.insert(v);
    return;
  }
  ++acc->count;
  acc->has_value = true;
  if (agg.func_name == "min") {
    if (acc->min_v.is_null() || v.Compare(acc->min_v) < 0) acc->min_v = v;
    return;
  }
  if (agg.func_name == "max") {
    if (acc->max_v.is_null() || v.Compare(acc->max_v) > 0) acc->max_v = v;
    return;
  }
  if (agg.func_name == "sum" || agg.func_name == "avg") {
    if (v.type() == ValueType::kInt64 && !acc->any_double) {
      acc->isum += v.int_val();
    } else {
      if (!acc->any_double) {
        acc->dsum = static_cast<double>(acc->isum);
        acc->any_double = true;
      }
      auto d = v.AsDouble();
      acc->dsum += d.ok() ? *d : 0;
    }
  }
}

Value AggFinalize(const AggAcc& acc, const Expr& agg) {
  const std::string& f = agg.func_name;
  if (f == "count") {
    if (agg.distinct) return Value::Int(static_cast<int64_t>(acc.distinct.size()));
    return Value::Int(static_cast<int64_t>(acc.count));
  }
  if (agg.distinct) {
    // sum/avg/min/max over DISTINCT values.
    if (acc.distinct.empty()) return Value::Null();
    if (f == "min") return *acc.distinct.begin();
    if (f == "max") return *acc.distinct.rbegin();
    double s = 0;
    for (const Value& v : acc.distinct) {
      auto d = v.AsDouble();
      s += d.ok() ? *d : 0;
    }
    if (f == "sum") return Value::Double(s);
    return Value::Double(s / static_cast<double>(acc.distinct.size()));
  }
  if (!acc.has_value) return Value::Null();
  if (f == "min") return acc.min_v;
  if (f == "max") return acc.max_v;
  if (f == "sum") {
    return acc.any_double ? Value::Double(acc.dsum) : Value::Int(acc.isum);
  }
  if (f == "avg") {
    double s = acc.any_double ? acc.dsum : static_cast<double>(acc.isum);
    return Value::Double(s / static_cast<double>(acc.count));
  }
  return Value::Null();
}

// Folds `src` into `dst` with the same promotion and tie rules
// AggUpdate applies row-by-row: int sums stay int until either side
// saw a double, min/max keep the earlier value on ties, DISTINCT sets
// union. Merging per-morsel partials in morsel order therefore yields
// the same bits regardless of which thread produced which partial.
void AggMerge(AggAcc* dst, const AggAcc& src, const Expr& agg) {
  if (agg.star_arg) {
    dst->count += src.count;
    return;
  }
  if (agg.distinct) {
    dst->distinct.insert(src.distinct.begin(), src.distinct.end());
    return;
  }
  dst->count += src.count;
  if (!src.has_value) return;
  dst->has_value = true;
  if (agg.func_name == "min") {
    if (dst->min_v.is_null() || (!src.min_v.is_null() &&
                                 src.min_v.Compare(dst->min_v) < 0)) {
      dst->min_v = src.min_v;
    }
    return;
  }
  if (agg.func_name == "max") {
    if (dst->max_v.is_null() || (!src.max_v.is_null() &&
                                 src.max_v.Compare(dst->max_v) > 0)) {
      dst->max_v = src.max_v;
    }
    return;
  }
  if (agg.func_name == "sum" || agg.func_name == "avg") {
    if (!src.any_double && !dst->any_double) {
      dst->isum += src.isum;
    } else {
      if (!dst->any_double) {
        dst->dsum = static_cast<double>(dst->isum);
        dst->any_double = true;
      }
      dst->dsum += src.any_double ? src.dsum : static_cast<double>(src.isum);
    }
  }
}

// One group's accumulated state: a copy of the group's first input
// row (for evaluating non-aggregate expressions) + one accumulator
// per aggregate node.
struct AggGroup {
  Row repr;
  std::vector<AggAcc> accs;
};
// Groups ordered by key so finalization order is deterministic.
using GroupMap = std::map<Row, AggGroup, storage::KeyLess>;

bool ExprHasSubquery(const Expr& e) {
  if (e.subquery != nullptr) return true;
  for (const auto& c : e.children) {
    if (ExprHasSubquery(*c)) return true;
  }
  return e.case_else != nullptr && ExprHasSubquery(*e.case_else);
}

bool StmtHasSubquery(const SelectStmt& s) {
  for (const auto& item : s.items) {
    if (item.expr && ExprHasSubquery(*item.expr)) return true;
  }
  if (s.where && ExprHasSubquery(*s.where)) return true;
  for (const auto& g : s.group_by) {
    if (ExprHasSubquery(*g)) return true;
  }
  if (s.having && ExprHasSubquery(*s.having)) return true;
  for (const auto& o : s.order_by) {
    if (ExprHasSubquery(*o.expr)) return true;
  }
  return false;
}

// Rows per intra-node scan morsel. The decomposition is page-aligned
// (Table::Morsels) and depends only on table contents, never on the
// thread count.
constexpr size_t kMorselRows = 1024;

// Hash partitions for the parallel merge of per-morsel aggregation
// partials. Fixed (never thread-dependent) so the decomposition and
// all accounting are identical at every thread count.
constexpr size_t kMergePartitions = 16;

// Collects aggregate call nodes reachable without crossing a subquery.
void CollectAggNodes(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind == ExprKind::kFuncCall && sql::IsAggregateFunction(e.func_name)) {
    out->push_back(&e);
    return;  // nested aggregates are invalid; do not descend
  }
  for (const auto& c : e.children) CollectAggNodes(*c, out);
  if (e.case_else) CollectAggNodes(*e.case_else, out);
}

// Aggregate-node inventory across all output clauses, in the fixed
// clause order every aggregation path shares (items, HAVING, ORDER
// BY) so accumulator indices line up between build and finalize.
std::vector<const Expr*> CollectAggInventory(const SelectStmt& stmt) {
  std::vector<const Expr*> agg_nodes;
  for (const auto& it : stmt.items) {
    if (it.expr) CollectAggNodes(*it.expr, &agg_nodes);
  }
  if (stmt.having) CollectAggNodes(*stmt.having, &agg_nodes);
  for (const auto& o : stmt.order_by) CollectAggNodes(*o.expr, &agg_nodes);
  return agg_nodes;
}

// Hard ceiling for up-front join-output reservations (satellite of the
// morsel-join work): a pathological cross join must not turn a size
// hint into a multi-gigabyte allocation before producing a single row.
constexpr size_t kMaxJoinReserveRows = size_t{1} << 20;

// Build-side semi-join filter pushed into the probe scan: a fixed
// 2^16-bit bitmap per hash partition testing two independent bit
// positions derived from the join-key hash. One partition is built by
// exactly one merge task, so construction needs no synchronization,
// and probes consult it read-only. False positives only cost a probe;
// false negatives are impossible, so skipping on a miss is exact.
class KeyFilter {
 public:
  void Add(size_t h) {
    Set(Bit1(h));
    Set(Bit2(h));
  }
  bool MayContain(size_t h) const { return Test(Bit1(h)) && Test(Bit2(h)); }

 private:
  static constexpr size_t kBits = size_t{1} << 16;
  // Skip the low bits: they pick the partition, so within one
  // partition they carry no information.
  static size_t Bit1(size_t h) { return (h >> 4) & (kBits - 1); }
  static size_t Bit2(size_t h) { return (h >> 24) & (kBits - 1); }
  void Set(size_t b) { words_[b >> 6] |= uint64_t{1} << (b & 63); }
  bool Test(size_t b) const { return (words_[b >> 6] >> (b & 63)) & 1; }

  std::array<uint64_t, kBits / 64> words_{};
};

// Morsel-private partial aggregation state: every morsel owns a
// private set of hash tables and counters, so workers share no mutable
// state. Keys are hash-partitioned at build time so the merge can fan
// out too; the partition count is a fixed constant (never
// thread-dependent) to keep the decomposition — and thus all
// accounting — identical at every thread count.
struct MorselPartial {
  std::array<std::unordered_map<Row, AggGroup, RowHash, RowEq>,
             kMergePartitions>
      groups;
  uint64_t cpu = 0;
  uint64_t scanned = 0;
  uint64_t probed = 0;          // join pipeline only
  uint64_t filter_skipped = 0;  // join pipeline only
  uint64_t vec_rows = 0;        // columnar join driver only
  uint64_t probe_vec = 0;       // rows through the vectorized probe kernel
  uint64_t dict_hits = 0;       // rows through dictionary-code kernels
};

// One row's contribution to a morsel-private partial: evaluate the
// GROUP BY key against ctx's current scope row, bucket it into its
// fixed merge partition, and fold every aggregate argument into the
// group's accumulators. Shared by the single-table morsel pipeline
// and the tail of the morsel join probe chain. ctx.cpu_ops must point
// at the morsel's private counter.
Status AccumulateRow(const SelectStmt& stmt,
                     const std::vector<const Expr*>& agg_nodes,
                     const EvalContext& ctx, const Row& repr,
                     MorselPartial* part) {
  Row key;
  key.reserve(stmt.group_by.size());
  for (const auto& g : stmt.group_by) {
    APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*g, ctx));
    key.push_back(std::move(v));
  }
  const size_t bucket = RowHash{}(key) % kMergePartitions;
  auto [it, inserted] = part->groups[bucket].try_emplace(std::move(key));
  AggGroup& grp = it->second;
  if (inserted) {
    grp.repr = repr;
    grp.accs.resize(agg_nodes.size());
  }
  for (size_t ai = 0; ai < agg_nodes.size(); ++ai) {
    const Expr& agg = *agg_nodes[ai];
    ++*ctx.cpu_ops;
    if (agg.star_arg) {
      AggUpdate(&grp.accs[ai], agg, Value::Null());
    } else {
      APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*agg.children[0], ctx));
      AggUpdate(&grp.accs[ai], agg, v);
    }
  }
  return Status::OK();
}

// Partitioned merge of per-morsel partials into the canonical ordered
// group map. Each key lives in exactly one partition (its hash is the
// same in every morsel), so partitions are independent and merge in
// parallel. Within a partition, partials fold in morsel-index order —
// the first morsel to see a key contributes its accumulators
// wholesale, later ones fold in via AggMerge — so values never depend
// on which thread ran what, and thread count 1 takes the exact same
// code path. The final fold into the ordered map is the sequential
// tail of the pipeline and is charged as such.
Result<GroupMap> MergeMorselPartials(
    ThreadPool* pool, std::vector<MorselPartial>* partials,
    const std::vector<const Expr*>& agg_nodes, ExecStats* stats) {
  struct PartitionResult {
    std::unordered_map<Row, AggGroup, RowHash, RowEq> groups;
    uint64_t cpu = 0;
  };
  std::vector<PartitionResult> merged(kMergePartitions);
  auto merge_partition = [&](size_t p) -> Status {
    PartitionResult& out = merged[p];
    for (size_t mi = 0; mi < partials->size(); ++mi) {
      for (auto& [key, lg] : (*partials)[mi].groups[p]) {
        auto [it, inserted] = out.groups.try_emplace(key);
        ++out.cpu;
        if (inserted) {
          it->second = std::move(lg);
          continue;
        }
        for (size_t ai = 0; ai < agg_nodes.size(); ++ai) {
          ++out.cpu;
          AggMerge(&it->second.accs[ai], lg.accs[ai], *agg_nodes[ai]);
        }
      }
    }
    return Status::OK();
  };
  APUAMA_RETURN_NOT_OK(
      ParallelFor(pool, 0, kMergePartitions, merge_partition));

  GroupMap groups;
  for (PartitionResult& pr : merged) {
    stats->cpu_ops += pr.cpu;
    stats->cpu_ops_parallel += pr.cpu;
    for (auto& [key, g] : pr.groups) {
      ++stats->cpu_ops;
      groups.emplace(key, std::move(g));
    }
  }
  return groups;
}

std::string OutputName(const sql::SelectItem& item, size_t ordinal) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr && item.expr->kind == ExprKind::kColumnRef) {
    return item.expr->column_name;
  }
  if (item.expr && item.expr->kind == ExprKind::kFuncCall) {
    return item.expr->func_name;
  }
  return StrFormat("column%zu", ordinal + 1);
}

}  // namespace

size_t JoinReserveHint(size_t left, size_t right) {
  if (left == 0 || right == 0) return 0;
  // left * right would overflow or exceed the cap.
  if (left > kMaxJoinReserveRows / right) return kMaxJoinReserveRows;
  return left * right;
}

// ---------------------------------------------------------------------------
// FROM/WHERE pipeline
// ---------------------------------------------------------------------------

Result<Relation> Executor::ExecuteFromWhere(const SelectStmt& stmt,
                                            const EvalScope* outer) {
  // Resolve FROM bindings.
  std::vector<FromBinding> from;
  std::vector<std::string> binding_names;
  for (const auto& ref : stmt.from) {
    APUAMA_ASSIGN_OR_RETURN(const storage::Table* t,
                            static_cast<const storage::Catalog*>(
                                db_->catalog())
                                ->GetTable(ref.table));
    FromBinding fb;
    fb.binding = ToLower(ref.binding());
    fb.table = t;
    from.push_back(fb);
    binding_names.push_back(fb.binding);
  }
  if (from.empty()) {
    Relation rel;
    rel.rows.push_back(Row{});  // one empty row, e.g. SELECT 1
    return rel;
  }

  // Attribute a column ref to a FROM binding (or -1 = outer/unknown).
  auto attribute = [&](const Expr& e) -> int {
    if (!e.table_qualifier.empty()) {
      for (size_t i = 0; i < from.size(); ++i) {
        if (EqualsIgnoreCase(from[i].binding, e.table_qualifier)) {
          return static_cast<int>(i);
        }
      }
      return -1;
    }
    int found = -1;
    for (size_t i = 0; i < from.size(); ++i) {
      if (from[i].table->schema().FindColumn(e.column_name) >= 0) {
        if (found >= 0) return found;  // ambiguous: first wins for
                                       // placement; eval will error
        found = static_cast<int>(i);
      }
    }
    return found;
  };

  // Classify conjuncts.
  std::vector<ConjunctInfo> conjuncts;
  for (const Expr* c : sql::SplitConjuncts(stmt.where.get())) {
    ConjunctInfo info;
    info.expr = c;
    info.is_subquery_pred =
        c->kind == ExprKind::kExists || c->kind == ExprKind::kInSubquery;
    if (!info.is_subquery_pred) {
      CollectBindings(*c, db_->catalog(), attribute, &info.bindings, &info.uses_outer,
                      binding_names);
    } else if (c->kind == ExprKind::kInSubquery) {
      CollectBindings(*c->children[0], db_->catalog(), attribute, &info.bindings,
                      &info.uses_outer, binding_names);
    }
    conjuncts.push_back(std::move(info));
  }

  // Scan each table with its single-table predicates.
  std::vector<Relation> rels(from.size());
  std::vector<std::set<std::string>> rel_bindings(from.size());
  for (size_t i = 0; i < from.size(); ++i) {
    std::vector<const Expr*> preds;
    for (auto& c : conjuncts) {
      if (c.is_subquery_pred || c.applied) continue;
      if (c.bindings.size() == 1 && *c.bindings.begin() == from[i].binding) {
        preds.push_back(c.expr);
        c.applied = true;
      }
    }
    APUAMA_ASSIGN_OR_RETURN(rels[i], ScanTable(from[i], preds, outer));
    rel_bindings[i] = {from[i].binding};
  }

  // Equality join predicates between two bindings.
  struct JoinPred {
    const Expr* lhs;
    const Expr* rhs;
    std::string lb, rb;  // binding of each side
    bool applied = false;
  };
  std::vector<JoinPred> join_preds;
  for (auto& c : conjuncts) {
    if (c.applied || c.is_subquery_pred || c.uses_outer) continue;
    if (c.bindings.size() != 2) continue;
    const Expr* e = c.expr;
    if (e->kind != ExprKind::kBinary || e->binary_op != BinaryOp::kEq) {
      continue;
    }
    // Each side must reference exactly one distinct binding.
    std::set<std::string> lb, rb;
    bool lo = false, ro = false;
    CollectBindings(*e->children[0], db_->catalog(), attribute, &lb, &lo,
                    binding_names);
    CollectBindings(*e->children[1], db_->catalog(), attribute, &rb, &ro,
                    binding_names);
    if (lo || ro || lb.size() != 1 || rb.size() != 1 || *lb.begin() == *rb.begin()) {
      continue;
    }
    JoinPred jp;
    jp.lhs = e->children[0].get();
    jp.rhs = e->children[1].get();
    jp.lb = *lb.begin();
    jp.rb = *rb.begin();
    join_preds.push_back(jp);
    c.applied = true;
  }

  // Greedy join order: start with the smallest relation; repeatedly
  // join the smallest relation connected by an equality predicate
  // (falling back to the smallest remaining = cross join).
  std::vector<bool> merged(from.size(), false);
  size_t cur = 0;
  for (size_t i = 1; i < from.size(); ++i) {
    if (rels[i].rows.size() < rels[cur].rows.size()) cur = i;
  }
  Relation current = std::move(rels[cur]);
  std::set<std::string> cur_bindings = rel_bindings[cur];
  merged[cur] = true;
  size_t remaining = from.size() - 1;

  auto apply_residuals = [&](Relation* rel) -> Status {
    for (auto& c : conjuncts) {
      if (c.applied || c.is_subquery_pred) continue;
      bool covered = true;
      for (const auto& b : c.bindings) {
        if (!cur_bindings.count(b)) {
          covered = false;
          break;
        }
      }
      if (!covered) continue;
      c.applied = true;
      ColumnResolver resolver(rel);
      EvalScope scope{&resolver, nullptr, outer};
      EvalContext ctx;
      ctx.scope = &scope;
      ctx.executor = this;
      ctx.cpu_ops = &stats_->cpu_ops;
      std::vector<Row> kept;
      kept.reserve(rel->rows.size());
      for (Row& r : rel->rows) {
        scope.row = &r;
        APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*c.expr, ctx));
        if (Truthiness(v) == 1) kept.push_back(std::move(r));
      }
      rel->rows = std::move(kept);
    }
    return Status::OK();
  };
  APUAMA_RETURN_NOT_OK(apply_residuals(&current));

  while (remaining > 0) {
    // Candidate: connected by at least one join pred.
    int best = -1;
    bool best_connected = false;
    for (size_t i = 0; i < from.size(); ++i) {
      if (merged[i]) continue;
      bool connected = false;
      for (const auto& jp : join_preds) {
        if (jp.applied) continue;
        bool l_in = cur_bindings.count(jp.lb) > 0;
        bool r_in = cur_bindings.count(jp.rb) > 0;
        const std::string& b = from[i].binding;
        if ((l_in && jp.rb == b) || (r_in && jp.lb == b)) {
          connected = true;
          break;
        }
      }
      if (best < 0 ||
          (connected && !best_connected) ||
          (connected == best_connected &&
           rels[i].rows.size() < rels[static_cast<size_t>(best)].rows.size())) {
        best = static_cast<int>(i);
        best_connected = connected;
      }
    }
    size_t next = static_cast<size_t>(best);

    // Gather the equality keys connecting current <-> next.
    std::vector<const Expr*> cur_keys, next_keys;
    for (auto& jp : join_preds) {
      if (jp.applied) continue;
      const std::string& b = from[next].binding;
      if (cur_bindings.count(jp.lb) && jp.rb == b) {
        cur_keys.push_back(jp.lhs);
        next_keys.push_back(jp.rhs);
        jp.applied = true;
      } else if (cur_bindings.count(jp.rb) && jp.lb == b) {
        cur_keys.push_back(jp.rhs);
        next_keys.push_back(jp.lhs);
        jp.applied = true;
      }
    }

    Relation& right = rels[next];
    Relation joined;
    joined.columns = current.columns;
    joined.columns.insert(joined.columns.end(), right.columns.begin(),
                          right.columns.end());

    if (!cur_keys.empty()) {
      // Hash join: build on the smaller input.
      const bool build_right = right.rows.size() <= current.rows.size();
      Relation& build = build_right ? right : current;
      Relation& probe = build_right ? current : right;
      const std::vector<const Expr*>& build_keys =
          build_right ? next_keys : cur_keys;
      const std::vector<const Expr*>& probe_keys =
          build_right ? cur_keys : next_keys;

      ColumnResolver bres(&build);
      EvalScope bscope{&bres, nullptr, outer};
      EvalContext bctx;
      bctx.scope = &bscope;
      bctx.cpu_ops = &stats_->cpu_ops;
      std::unordered_multimap<Row, size_t, RowHash, RowEq> ht;
      ht.reserve(build.rows.size());
      for (size_t i = 0; i < build.rows.size(); ++i) {
        bscope.row = &build.rows[i];
        Row key;
        key.reserve(build_keys.size());
        bool null_key = false;
        for (const Expr* k : build_keys) {
          APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*k, bctx));
          if (v.is_null()) null_key = true;
          key.push_back(std::move(v));
        }
        if (!null_key) ht.emplace(std::move(key), i);
      }
      ColumnResolver pres(&probe);
      EvalScope pscope{&pres, nullptr, outer};
      EvalContext pctx;
      pctx.scope = &pscope;
      pctx.cpu_ops = &stats_->cpu_ops;
      for (const Row& prow : probe.rows) {
        pscope.row = &prow;
        Row key;
        key.reserve(probe_keys.size());
        bool null_key = false;
        for (const Expr* k : probe_keys) {
          APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*k, pctx));
          if (v.is_null()) null_key = true;
          key.push_back(std::move(v));
        }
        if (null_key) continue;
        auto [lo, hi] = ht.equal_range(key);
        for (auto it = lo; it != hi; ++it) {
          ++stats_->cpu_ops;
          const Row& brow = build.rows[it->second];
          Row out;
          out.reserve(joined.columns.size());
          const Row& cur_row = build_right ? prow : brow;
          const Row& right_row = build_right ? brow : prow;
          out.insert(out.end(), cur_row.begin(), cur_row.end());
          out.insert(out.end(), right_row.begin(), right_row.end());
          joined.rows.push_back(std::move(out));
        }
      }
    } else {
      // Cross join.
      joined.rows.reserve(
          JoinReserveHint(current.rows.size(), right.rows.size()));
      for (const Row& a : current.rows) {
        for (const Row& b : right.rows) {
          ++stats_->cpu_ops;
          Row out;
          out.reserve(a.size() + b.size());
          out.insert(out.end(), a.begin(), a.end());
          out.insert(out.end(), b.begin(), b.end());
          joined.rows.push_back(std::move(out));
        }
      }
    }
    current = std::move(joined);
    cur_bindings.insert(from[next].binding);
    merged[next] = true;
    --remaining;
    APUAMA_RETURN_NOT_OK(apply_residuals(&current));
  }

  // Subquery predicates (EXISTS / IN) last, over the full join result.
  for (auto& c : conjuncts) {
    if (!c.is_subquery_pred) continue;
    APUAMA_ASSIGN_OR_RETURN(
        current, ApplySubqueryPredicate(std::move(current), *c.expr, outer));
  }
  // Any non-subquery conjunct left unapplied references unknown names.
  for (auto& c : conjuncts) {
    if (!c.applied && !c.is_subquery_pred && !c.uses_outer) {
      return Status::BindError("predicate references unknown tables");
    }
    if (!c.applied && !c.is_subquery_pred && c.uses_outer) {
      // Outer-correlated residual: evaluate with the outer scope.
      ColumnResolver resolver(&current);
      EvalScope scope{&resolver, nullptr, outer};
      EvalContext ctx;
      ctx.scope = &scope;
      ctx.executor = this;
      ctx.cpu_ops = &stats_->cpu_ops;
      std::vector<Row> kept;
      for (Row& r : current.rows) {
        scope.row = &r;
        APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*c.expr, ctx));
        if (Truthiness(v) == 1) kept.push_back(std::move(r));
      }
      current.rows = std::move(kept);
      c.applied = true;
    }
  }
  return current;
}

// ---------------------------------------------------------------------------
// Table scans with access-path choice
// ---------------------------------------------------------------------------

Result<Executor::ScanPlan> Executor::PlanScan(
    const FromBinding& fb, const std::vector<const Expr*>& preds,
    const EvalScope* outer) {
  const storage::Table& t = *fb.table;

  // Extract sargable bounds per column: conjuncts of shape
  // <col> op <outer-evaluable expr>, or BETWEEN.
  struct ColBounds {
    Bound lo, hi;
    bool eq = false;
  };
  std::map<int, ColBounds> bounds;  // column index -> bounds
  auto column_of = [&](const Expr& e) -> int {
    if (e.kind != ExprKind::kColumnRef) return -1;
    if (!e.table_qualifier.empty() &&
        !EqualsIgnoreCase(e.table_qualifier, fb.binding)) {
      return -1;
    }
    return t.schema().FindColumn(e.column_name);
  };
  for (const Expr* p : preds) {
    if (p->kind == ExprKind::kBetween) {
      int col = column_of(*p->children[0]);
      if (col < 0 || p->negated) continue;
      auto lo = EvalOuterOnly(*p->children[1], outer, &stats_->cpu_ops);
      auto hi = EvalOuterOnly(*p->children[2], outer, &stats_->cpu_ops);
      if (!lo.ok() || !hi.ok()) continue;
      ColBounds& cb = bounds[col];
      if (!cb.lo.present || lo->Compare(cb.lo.value) > 0) {
        cb.lo = Bound{true, *lo, true};
      }
      if (!cb.hi.present || hi->Compare(cb.hi.value) < 0) {
        cb.hi = Bound{true, *hi, true};
      }
      continue;
    }
    if (p->kind != ExprKind::kBinary || !sql::IsComparison(p->binary_op)) {
      continue;
    }
    int col = column_of(*p->children[0]);
    const Expr* other = p->children[1].get();
    BinaryOp op = p->binary_op;
    if (col < 0) {
      // literal op col — mirror the operator.
      col = column_of(*p->children[1]);
      other = p->children[0].get();
      switch (op) {
        case BinaryOp::kLt:
          op = BinaryOp::kGt;
          break;
        case BinaryOp::kLtEq:
          op = BinaryOp::kGtEq;
          break;
        case BinaryOp::kGt:
          op = BinaryOp::kLt;
          break;
        case BinaryOp::kGtEq:
          op = BinaryOp::kLtEq;
          break;
        default:
          break;
      }
    }
    if (col < 0) continue;
    auto v = EvalOuterOnly(*other, outer, &stats_->cpu_ops);
    if (!v.ok() || v->is_null()) continue;
    ColBounds& cb = bounds[col];
    switch (op) {
      case BinaryOp::kEq:
        cb.eq = true;
        cb.lo = Bound{true, *v, true};
        cb.hi = Bound{true, *v, true};
        break;
      case BinaryOp::kLt:
        if (!cb.hi.present || v->Compare(cb.hi.value) < 0) {
          cb.hi = Bound{true, *v, false};
        }
        break;
      case BinaryOp::kLtEq:
        if (!cb.hi.present || v->Compare(cb.hi.value) < 0) {
          cb.hi = Bound{true, *v, true};
        }
        break;
      case BinaryOp::kGt:
        if (!cb.lo.present || v->Compare(cb.lo.value) > 0) {
          cb.lo = Bound{true, *v, false};
        }
        break;
      case BinaryOp::kGtEq:
        if (!cb.lo.present || v->Compare(cb.lo.value) > 0) {
          cb.lo = Bound{true, *v, true};
        }
        break;
      default:
        break;
    }
  }

  // Candidate paths. Costs are in page units; index-driven paths are
  // charged kIndexPageCostFactor per page, like a real optimizer
  // penalizing non-sequential I/O.
  const size_t seq_pages = t.num_pages();
  ScanPlan plan;
  plan.range_end = t.num_rows();
  AccessPath& path = plan.path;
  size_t& range_begin = plan.range_begin;
  size_t& range_end = plan.range_end;
  std::vector<size_t>& index_positions = plan.index_positions;
  double best_cost = seq_pages == 0 ? 1.0 : static_cast<double>(seq_pages);
  bool have_alt = false;

  // Clustered range on the first clustered-key column.
  if (!t.clustered_key().empty()) {
    auto it = bounds.find(t.clustered_key()[0]);
    if (it != bounds.end() &&
        (it->second.lo.present || it->second.hi.present)) {
      auto [b, e] = t.ClusteredRange(
          it->second.lo.present ? &it->second.lo.value : nullptr,
          it->second.lo.inclusive,
          it->second.hi.present ? &it->second.hi.value : nullptr,
          it->second.hi.inclusive);
      size_t rpp = t.rows_per_page();
      size_t pages = b >= e ? 0 : (e - 1) / rpp - b / rpp + 1;
      double cost = (pages == 0 ? 1.0 : static_cast<double>(pages)) *
                    kIndexPageCostFactor;
      have_alt = true;
      if (cost < best_cost || !db_->settings()->enable_seqscan) {
        best_cost = cost;
        path = AccessPath::kClusteredRange;
        range_begin = b;
        range_end = e;
      }
    }
  }

  // Secondary index on any bounded column.
  if (path != AccessPath::kClusteredRange) {
    for (const auto& [col, cb] : bounds) {
      const storage::Index* idx = t.FindIndexOnColumn(col);
      if (idx == nullptr) continue;
      if (!cb.lo.present && !cb.hi.present) continue;
      std::vector<const Row*> pks = idx->LookupRange(
          cb.lo.present ? &cb.lo.value : nullptr, cb.lo.inclusive,
          cb.hi.present ? &cb.hi.value : nullptr, cb.hi.inclusive);
      stats_->cpu_ops += pks.size();
      // Cost: one (possibly random) page per matching row, deduped
      // after sorting positions — a bitmap heap scan.
      std::vector<size_t> positions;
      positions.reserve(pks.size());
      for (const Row* pk : pks) {
        size_t pos = t.PositionOfKey(*pk);
        if (pos < t.num_rows()) positions.push_back(pos);
      }
      std::sort(positions.begin(), positions.end());
      size_t rpp = t.rows_per_page();
      size_t pages = 0;
      size_t last_page = SIZE_MAX;
      for (size_t pos : positions) {
        size_t pg = pos / rpp;
        if (pg != last_page) {
          ++pages;
          last_page = pg;
        }
      }
      double cost = (pages == 0 ? 1.0 : static_cast<double>(pages)) *
                    kIndexPageCostFactor;
      have_alt = true;
      if (cost < best_cost ||
          (!db_->settings()->enable_seqscan &&
           path == AccessPath::kSeqScan)) {
        best_cost = cost;
        path = AccessPath::kSecondaryIndex;
        index_positions = std::move(positions);
      }
    }
  }
  (void)have_alt;

  scan_paths_.emplace_back(fb.binding, path);
  if (path == AccessPath::kSeqScan) {
    stats_->used_seq_scan = true;
  } else {
    stats_->used_index_scan = true;
  }
  return plan;
}

Result<Relation> Executor::ScanTable(const FromBinding& fb,
                                     const std::vector<const Expr*>& preds,
                                     const EvalScope* outer) {
  const storage::Table& t = *fb.table;
  Relation rel;
  rel.columns.reserve(t.schema().num_columns());
  for (const auto& col : t.schema().columns()) {
    rel.columns.push_back(ColumnBinding{fb.binding, col.name});
  }

  APUAMA_ASSIGN_OR_RETURN(ScanPlan plan, PlanScan(fb, preds, outer));

  // Emit rows, touching pages through the buffer pool and applying
  // every predicate (the path is an optimization, not a filter
  // replacement — residual predicate bits still apply).
  ColumnResolver resolver(&rel);
  EvalScope scope{&resolver, nullptr, outer};
  EvalContext ctx;
  ctx.scope = &scope;
  ctx.executor = this;
  ctx.cpu_ops = &stats_->cpu_ops;

  auto touch = [&](size_t pos) {
    bool hit = db_->buffer_pool()->Touch(t.PageOfPosition(pos));
    if (hit) {
      ++stats_->pages_cache;
    } else {
      ++stats_->pages_disk;
    }
  };

  auto emit = [&](size_t pos) -> Status {
    const Row& r = t.row(pos);
    ++stats_->tuples_scanned;
    scope.row = &r;
    for (const Expr* p : preds) {
      APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*p, ctx));
      if (Truthiness(v) != 1) return Status::OK();
    }
    rel.rows.push_back(r);
    return Status::OK();
  };

  switch (plan.path) {
    case AccessPath::kSeqScan: {
      size_t rpp = t.rows_per_page();
      for (size_t pos = 0; pos < t.num_rows(); ++pos) {
        if (pos % rpp == 0) touch(pos);
        APUAMA_RETURN_NOT_OK(emit(pos));
      }
      break;
    }
    case AccessPath::kClusteredRange: {
      size_t rpp = t.rows_per_page();
      size_t last_page = SIZE_MAX;
      for (size_t pos = plan.range_begin; pos < plan.range_end; ++pos) {
        size_t pg = pos / rpp;
        if (pg != last_page) {
          touch(pos);
          last_page = pg;
        }
        APUAMA_RETURN_NOT_OK(emit(pos));
      }
      break;
    }
    case AccessPath::kSecondaryIndex: {
      size_t rpp = t.rows_per_page();
      size_t last_page = SIZE_MAX;
      for (size_t pos : plan.index_positions) {
        size_t pg = pos / rpp;
        if (pg != last_page) {
          touch(pos);
          last_page = pg;
        }
        APUAMA_RETURN_NOT_OK(emit(pos));
      }
      break;
    }
  }
  return rel;
}

// ---------------------------------------------------------------------------
// EXISTS / IN subquery predicates
// ---------------------------------------------------------------------------

// True when a subquery's result depends on more than its FROM+WHERE
// (grouping, aggregates, DISTINCT, LIMIT): such subqueries must run
// through full SELECT semantics, not the decorrelated fast path.
static bool SubqueryAggregates(const SelectStmt& sub) {
  if (!sub.group_by.empty() || sub.having != nullptr || sub.distinct ||
      sub.limit >= 0) {
    return true;
  }
  for (const auto& item : sub.items) {
    if (item.expr && sql::ContainsAggregate(*item.expr)) return true;
  }
  return false;
}

Result<Relation> Executor::ApplySubqueryPredicate(Relation rel,
                                                  const Expr& e,
                                                  const EvalScope* outer) {
  const SelectStmt& sub = *e.subquery;
  const bool negated = e.negated;
  const Expr* in_lhs = nullptr;
  const Expr* in_inner_item = nullptr;
  bool aggregating = SubqueryAggregates(sub);

  // Aggregating subqueries (e.g. TPC-H Q18's IN over a grouped
  // HAVING) cannot be decorrelated into a semi-join over raw rows.
  // When such a subquery is *uncorrelated*, evaluate it once with
  // full SELECT semantics and filter by set membership; correlated
  // ones fall back to per-row evaluation.
  if (aggregating && e.kind == ExprKind::kInSubquery &&
      sub.items.size() == 1 && !sub.items[0].star) {
    auto once = ExecuteSelect(sub, /*outer=*/nullptr);
    if (once.ok()) {
      std::set<Value> members;
      bool contains_null = false;
      for (const Row& r : once->rows) {
        if (r[0].is_null()) {
          contains_null = true;
        } else {
          members.insert(r[0]);
        }
      }
      ColumnResolver resolver(&rel);
      EvalScope scope{&resolver, nullptr, outer};
      EvalContext ctx;
      ctx.scope = &scope;
      ctx.executor = this;
      ctx.cpu_ops = &stats_->cpu_ops;
      std::vector<Row> kept;
      kept.reserve(rel.rows.size());
      for (Row& r : rel.rows) {
        scope.row = &r;
        APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*e.children[0], ctx));
        ++stats_->cpu_ops;
        bool keep;
        if (v.is_null()) {
          keep = false;  // NULL IN (...) is never true/false-kept
        } else if (members.count(v) > 0) {
          keep = !negated;
        } else if (contains_null) {
          keep = false;  // unknown under three-valued logic
        } else {
          keep = negated;
        }
        if (keep) kept.push_back(std::move(r));
      }
      rel.rows = std::move(kept);
      return rel;
    }
    // BindError etc.: correlated — handled per row below.
  }
  if (aggregating) goto per_row_fallback;

  // IN-subquery with extra semantics: lhs must equal the single inner
  // select item. NOT IN falls back to per-row evaluation for correct
  // NULL semantics.
  if (e.kind == ExprKind::kInSubquery) {
    if (negated || sub.items.size() != 1 || sub.items[0].star) {
      goto per_row_fallback;
    }
    in_lhs = e.children[0].get();
    in_inner_item = sub.items[0].expr.get();
  }

  {
    // Attribute columns either to the subquery's FROM bindings or to
    // the outer relation.
    std::vector<std::string> sub_bindings;
    for (const auto& r : sub.from) sub_bindings.push_back(ToLower(r.binding()));
    const storage::Catalog* cat = db_->catalog();
    std::vector<const storage::Table*> sub_tables;
    for (const auto& r : sub.from) {
      auto t = cat->GetTable(r.table);
      if (!t.ok()) return t.status();
      sub_tables.push_back(*t);
    }
    auto side_of = [&](const Expr& x, bool* inner, bool* outer_side,
                       bool* unknown) {
      std::function<void(const Expr&)> walk = [&](const Expr& n) {
        if (n.kind == ExprKind::kColumnRef) {
          // Inner?
          if (!n.table_qualifier.empty()) {
            for (const auto& b : sub_bindings) {
              if (EqualsIgnoreCase(b, n.table_qualifier)) {
                *inner = true;
                return;
              }
            }
          } else {
            for (const auto* t : sub_tables) {
              if (t->schema().FindColumn(n.column_name) >= 0) {
                *inner = true;
                return;
              }
            }
          }
          // Outer relation?
          int slot = rel.FindSlot(n.table_qualifier, n.column_name);
          if (slot >= 0) {
            *outer_side = true;
            return;
          }
          *unknown = true;
          return;
        }
        for (const auto& c : n.children) walk(*c);
        if (n.case_else) walk(*n.case_else);
        if (n.subquery) *unknown = true;  // nested subquery: fallback
      };
      walk(x);
    };

    // Partition subquery conjuncts.
    std::vector<const Expr*> inner_only;
    std::vector<std::pair<const Expr*, const Expr*>> eq_pairs;  // (outer, inner)
    std::vector<const Expr*> residual;
    bool decorrelatable = true;
    for (const Expr* c : sql::SplitConjuncts(sub.where.get())) {
      bool inner = false, outer_side = false, unknown = false;
      side_of(*c, &inner, &outer_side, &unknown);
      if (unknown) {
        decorrelatable = false;
        break;
      }
      if (!outer_side) {
        inner_only.push_back(c);
        continue;
      }
      // Correlated. Equality between a pure-inner side and a
      // pure-outer side becomes a hash key; anything else is residual.
      if (c->kind == ExprKind::kBinary && c->binary_op == BinaryOp::kEq) {
        bool li = false, lo_ = false, lu = false;
        bool ri = false, ro = false, ru = false;
        side_of(*c->children[0], &li, &lo_, &lu);
        side_of(*c->children[1], &ri, &ro, &ru);
        if (!lu && !ru) {
          if (li && !lo_ && ro && !ri) {
            eq_pairs.emplace_back(c->children[1].get(), c->children[0].get());
            continue;
          }
          if (ri && !ro && lo_ && !li) {
            eq_pairs.emplace_back(c->children[0].get(), c->children[1].get());
            continue;
          }
        }
      }
      residual.push_back(c);
    }
    if (in_lhs != nullptr) {
      eq_pairs.emplace_back(in_lhs, in_inner_item);
    }

    if (!decorrelatable || eq_pairs.empty()) goto per_row_fallback;

    // Execute the subquery's FROM + inner-only WHERE once.
    SelectStmt inner_stmt;
    inner_stmt.from = sub.from;
    sql::ExprPtr inner_where;
    for (const Expr* c : inner_only) {
      inner_where = sql::AndCombine(std::move(inner_where), c->Clone());
    }
    inner_stmt.where = std::move(inner_where);
    APUAMA_ASSIGN_OR_RETURN(Relation inner_rel,
                            ExecuteFromWhere(inner_stmt, nullptr));

    // Build hash table on inner rows keyed by the inner sides.
    ColumnResolver ires(&inner_rel);
    EvalScope iscope{&ires, nullptr, nullptr};
    EvalContext ictx;
    ictx.scope = &iscope;
    ictx.cpu_ops = &stats_->cpu_ops;
    std::unordered_multimap<Row, size_t, RowHash, RowEq> ht;
    ht.reserve(inner_rel.rows.size());
    for (size_t i = 0; i < inner_rel.rows.size(); ++i) {
      iscope.row = &inner_rel.rows[i];
      Row key;
      bool null_key = false;
      for (const auto& [o, in] : eq_pairs) {
        (void)o;
        APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*in, ictx));
        if (v.is_null()) null_key = true;
        key.push_back(std::move(v));
      }
      if (!null_key) ht.emplace(std::move(key), i);
    }

    // Probe with outer rows; residual predicates see both scopes
    // (inner row scope chained to the outer row scope).
    ColumnResolver ores(&rel);
    EvalScope oscope{&ores, nullptr, outer};
    EvalContext octx;
    octx.scope = &oscope;
    octx.cpu_ops = &stats_->cpu_ops;

    std::vector<Row> kept;
    kept.reserve(rel.rows.size());
    for (Row& r : rel.rows) {
      oscope.row = &r;
      Row key;
      bool null_key = false;
      for (const auto& [o, in] : eq_pairs) {
        (void)in;
        APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*o, octx));
        if (v.is_null()) null_key = true;
        key.push_back(std::move(v));
      }
      bool found = false;
      if (!null_key) {
        auto [lo, hi] = ht.equal_range(key);
        for (auto it = lo; it != hi && !found; ++it) {
          ++stats_->cpu_ops;
          if (residual.empty()) {
            found = true;
            break;
          }
          // Evaluate residual with inner row innermost, outer row next.
          EvalScope rscope{&ires, &inner_rel.rows[it->second], &oscope};
          EvalContext rctx;
          rctx.scope = &rscope;
          rctx.cpu_ops = &stats_->cpu_ops;
          bool all = true;
          for (const Expr* res : residual) {
            APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*res, rctx));
            if (Truthiness(v) != 1) {
              all = false;
              break;
            }
          }
          found = all;
        }
      }
      if (found != negated) kept.push_back(std::move(r));
    }
    rel.rows = std::move(kept);
    return rel;
  }

per_row_fallback : {
  ColumnResolver resolver(&rel);
  EvalScope scope{&resolver, nullptr, outer};
  EvalContext ctx;
  ctx.scope = &scope;
  ctx.executor = this;
  ctx.cpu_ops = &stats_->cpu_ops;
  std::vector<Row> kept;
  kept.reserve(rel.rows.size());
  for (Row& r : rel.rows) {
    scope.row = &r;
    APUAMA_ASSIGN_OR_RETURN(Value v, Eval(e, ctx));
    if (Truthiness(v) == 1) kept.push_back(std::move(r));
  }
  rel.rows = std::move(kept);
  return rel;
}
}

Result<Value> Executor::ScalarSubqueryValue(const SelectStmt& sub,
                                            const EvalScope* outer) {
  APUAMA_ASSIGN_OR_RETURN(QueryResult qr, ExecuteSelect(sub, outer));
  if (qr.num_columns() != 1) {
    return Status::InvalidArgument(
        "scalar subquery must return exactly one column");
  }
  if (qr.rows.empty()) return Value::Null();
  if (qr.rows.size() > 1) {
    return Status::InvalidArgument(
        "scalar subquery returned more than one row");
  }
  return qr.rows[0][0];
}

Result<bool> Executor::SubqueryExists(const SelectStmt& sub,
                                      const EvalScope* outer) {
  if (SubqueryAggregates(sub)) {
    // Grouped/aggregating EXISTS: a group must survive HAVING (and a
    // global aggregate always yields one row).
    APUAMA_ASSIGN_OR_RETURN(QueryResult qr, ExecuteSelect(sub, outer));
    return !qr.rows.empty();
  }
  APUAMA_ASSIGN_OR_RETURN(Relation rel, ExecuteFromWhere(sub, outer));
  return !rel.rows.empty();
}

Result<bool> Executor::SubqueryContains(const SelectStmt& sub,
                                        const Value& needle,
                                        const EvalScope* outer) {
  if (sub.items.size() != 1 || sub.items[0].star) {
    return Status::Unsupported("IN subquery must select a single column");
  }
  if (SubqueryAggregates(sub)) {
    // Full SELECT semantics: grouping / HAVING / DISTINCT / LIMIT all
    // shape the membership set (TPC-H Q18's inner query).
    APUAMA_ASSIGN_OR_RETURN(QueryResult qr, ExecuteSelect(sub, outer));
    for (const Row& r : qr.rows) {
      if (!r[0].is_null() && r[0].Compare(needle) == 0) return true;
    }
    return false;
  }
  APUAMA_ASSIGN_OR_RETURN(Relation rel, ExecuteFromWhere(sub, outer));
  ColumnResolver resolver(&rel);
  EvalScope scope{&resolver, nullptr, outer};
  EvalContext ctx;
  ctx.scope = &scope;
  ctx.cpu_ops = &stats_->cpu_ops;
  for (const Row& r : rel.rows) {
    scope.row = &r;
    APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*sub.items[0].expr, ctx));
    if (!v.is_null() && v.Compare(needle) == 0) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Aggregation / projection / ordering
// ---------------------------------------------------------------------------

Result<QueryResult> Executor::ExecuteSelect(const SelectStmt& stmt,
                                            const EvalScope* outer) {
  bool has_agg = !stmt.group_by.empty();
  for (const auto& it : stmt.items) {
    if (it.expr && sql::ContainsAggregate(*it.expr)) has_agg = true;
  }
  if (stmt.having && sql::ContainsAggregate(*stmt.having)) has_agg = true;
  for (const auto& o : stmt.order_by) {
    if (sql::ContainsAggregate(*o.expr)) has_agg = true;
  }

  Result<QueryResult> result = QueryResult{};
  bool done = false;
  if (has_agg && MorselEligible(stmt, outer)) {
    // Fused scan + filter + partitioned pre-aggregation. Taken even at
    // exec_threads = 1 so the result never depends on the knob.
    result = ExecuteMorselAggregate(stmt);
    done = true;
  } else if (has_agg && MorselJoinEligible(stmt, outer)) {
    // Morsel-parallel partitioned hash joins. Planning may discover a
    // shape the pipeline cannot run (cross join, outer references) and
    // return nullopt; the sequential chain below then takes over.
    APUAMA_ASSIGN_OR_RETURN(std::optional<QueryResult> qr,
                            ExecuteMorselJoin(stmt));
    if (qr.has_value()) {
      result = std::move(*qr);
      done = true;
    }
  }
  if (!done) {
    APUAMA_ASSIGN_OR_RETURN(Relation rel, ExecuteFromWhere(stmt, outer));
    result = has_agg ? AggregateAndProject(stmt, std::move(rel), outer)
                     : ProjectOnly(stmt, std::move(rel), outer);
  }
  if (result.ok()) {
    result->stats = *stats_;
    result->stats.tuples_output = result->rows.size();
    stats_->tuples_output = result->rows.size();
  }
  return result;
}

namespace {

// Sorts (sort_key, payload) pairs by keys with per-key direction.
void SortRows(std::vector<std::pair<Row, Row>>* keyed,
              const std::vector<bool>& desc, uint64_t* cpu) {
  std::stable_sort(keyed->begin(), keyed->end(),
                   [&desc, cpu](const auto& a, const auto& b) {
                     ++*cpu;
                     for (size_t i = 0; i < a.first.size(); ++i) {
                       int c = a.first[i].Compare(b.first[i]);
                       if (c != 0) return desc[i] ? c > 0 : c < 0;
                     }
                     return false;
                   });
}

// Ordinal / alias resolution for ORDER BY: returns output-slot index
// or -1 when the key needs full evaluation.
int OrderOutputSlot(const sql::OrderItem& oi,
                    const std::vector<std::string>& out_names) {
  const Expr& e = *oi.expr;
  if (e.kind == ExprKind::kLiteral && e.literal.type() == ValueType::kInt64) {
    int64_t ord = e.literal.int_val();
    if (ord >= 1 && static_cast<size_t>(ord) <= out_names.size()) {
      return static_cast<int>(ord - 1);
    }
  }
  if (e.kind == ExprKind::kColumnRef && e.table_qualifier.empty()) {
    for (size_t i = 0; i < out_names.size(); ++i) {
      if (EqualsIgnoreCase(out_names[i], e.column_name)) {
        return static_cast<int>(i);
      }
    }
  }
  return -1;
}

// OFFSET skips rows after ordering; LIMIT caps what remains.
void ApplyOffsetLimit(const SelectStmt& stmt, std::vector<Row>* rows) {
  if (stmt.offset > 0) {
    size_t skip = std::min(rows->size(), static_cast<size_t>(stmt.offset));
    rows->erase(rows->begin(), rows->begin() + static_cast<ptrdiff_t>(skip));
  }
  if (stmt.limit >= 0 && rows->size() > static_cast<size_t>(stmt.limit)) {
    rows->resize(static_cast<size_t>(stmt.limit));
  }
}

void DedupePreservingOrder(std::vector<Row>* rows) {
  std::set<Row, storage::KeyLess> seen;
  std::vector<Row> out;
  out.reserve(rows->size());
  for (Row& r : *rows) {
    if (seen.insert(r).second) out.push_back(std::move(r));
  }
  *rows = std::move(out);
}

// Shared tail of both aggregation paths (sequential and morsel):
// finalize accumulators, apply HAVING, project, order, dedupe, and
// offset/limit. `header` must have the column layout the group
// representatives were drawn from.
Result<QueryResult> FinalizeGroups(Executor* exec, ExecStats* stats,
                                   const SelectStmt& stmt,
                                   const Relation& header, GroupMap* groups,
                                   const std::vector<const Expr*>& agg_nodes,
                                   const EvalScope* outer) {
  QueryResult qr;
  for (const auto& it : stmt.items) {
    qr.column_names.push_back(OutputName(it, qr.column_names.size()));
  }
  std::vector<bool> desc;
  for (const auto& o : stmt.order_by) desc.push_back(o.desc);

  ColumnResolver resolver(&header);
  EvalScope scope{&resolver, nullptr, outer};
  EvalContext ctx;
  ctx.scope = &scope;
  ctx.executor = exec;
  ctx.cpu_ops = &stats->cpu_ops;

  std::vector<std::pair<Row, Row>> keyed;
  keyed.reserve(groups->size());
  for (auto& [key, grp] : *groups) {
    std::unordered_map<const Expr*, Value> agg_values;
    for (size_t ai = 0; ai < agg_nodes.size(); ++ai) {
      agg_values[agg_nodes[ai]] = AggFinalize(grp.accs[ai], *agg_nodes[ai]);
    }
    scope.row = &grp.repr;
    EvalContext gctx = ctx;
    gctx.agg_values = &agg_values;

    if (stmt.having) {
      APUAMA_ASSIGN_OR_RETURN(Value hv, Eval(*stmt.having, gctx));
      if (Truthiness(hv) != 1) continue;
    }
    Row out;
    out.reserve(stmt.items.size());
    for (const auto& it2 : stmt.items) {
      APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*it2.expr, gctx));
      out.push_back(std::move(v));
    }
    Row skey;
    for (const auto& o : stmt.order_by) {
      int slot = OrderOutputSlot(o, qr.column_names);
      if (slot >= 0) {
        skey.push_back(out[static_cast<size_t>(slot)]);
      } else {
        APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*o.expr, gctx));
        skey.push_back(std::move(v));
      }
    }
    keyed.emplace_back(std::move(skey), std::move(out));
  }

  if (!stmt.order_by.empty()) {
    SortRows(&keyed, desc, &stats->cpu_ops);
  }
  qr.rows.reserve(keyed.size());
  for (auto& [k, out] : keyed) qr.rows.push_back(std::move(out));
  if (stmt.distinct) DedupePreservingOrder(&qr.rows);
  ApplyOffsetLimit(stmt, &qr.rows);
  return qr;
}

}  // namespace

// ---------------------------------------------------------------------------
// Columnar vectorized aggregation
// ---------------------------------------------------------------------------
namespace {

// Merge buckets for the columnar path. A superset of the row path's
// 16 partitions: the radix strategy merges all 64 in parallel, the
// partitioned strategy assigns 4 buckets to each of 16 tasks, and the
// central strategy folds them on the coordinator. Fixed (never
// thread-dependent) so the decomposition is identical at every
// exec_threads.
constexpr size_t kRadixBuckets = 64;

// Auto-strategy thresholds on the maximum partial-group count any
// morsel in the first wave observed. A 1024-row morsel caps the
// observable count at 1024, so the radix trigger asks for morsels
// that are ~3/4 distinct — the signature of high global cardinality.
// Clustered tables can under-report (each morsel sees few of many
// global groups) and land on central: results are unaffected, only
// scheduling, and `SET merge_strategy` overrides the guess.
constexpr size_t kCentralMaxGroups = 128;
constexpr size_t kRadixMinGroups = 768;

// Wrapping add via unsigned arithmetic: same bits as the row path's
// int64 `+=` for every non-overflowing input, defined behavior when
// a SUM does overflow (the row path relies on -fwrapv semantics).
int64_t ColWrapAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) +
                              static_cast<uint64_t>(b));
}

// Aggregate function, resolved once at compile time instead of
// string-comparing per row.
enum class AggFunc { kCount, kSum, kAvg, kMin, kMax, kOther };

AggFunc AggFuncOf(const Expr& e) {
  if (e.func_name == "count") return AggFunc::kCount;
  if (e.func_name == "sum") return AggFunc::kSum;
  if (e.func_name == "avg") return AggFunc::kAvg;
  if (e.func_name == "min") return AggFunc::kMin;
  if (e.func_name == "max") return AggFunc::kMax;
  return AggFunc::kOther;
}

// One aggregate in the columnar plan. `arg` is the vectorized
// argument kernel; null means the argument did not compile and the
// morsel loop falls back to row-wise Eval + AggUpdate for this one
// aggregate (everything else stays vectorized).
struct ColAggSpec {
  const Expr* agg = nullptr;
  AggFunc func = AggFunc::kOther;
  bool star = false;
  bool distinct = false;
  std::unique_ptr<VecExpr> arg;
};

// One GROUP BY key: a direct slot gather when the key is a resolvable
// bare column ref, otherwise a row-wise Eval fallback.
struct ColKeySpec {
  int slot = -1;
  const Expr* expr = nullptr;
};

struct ColumnarPlan {
  const storage::ColumnarTable* chunk = nullptr;
  // WHERE conjuncts in SplitConjuncts order; exactly one of vec/row
  // is set per step. Order is preserved so each conjunct evaluates
  // over precisely the survivors of the previous ones — the same row
  // set (and the same error behavior) as the row path's short-circuit.
  struct PredStep {
    std::unique_ptr<VecPredicate> vec;
    const Expr* row = nullptr;
  };
  std::vector<PredStep> preds;
  std::vector<ColKeySpec> keys;
  std::vector<ColAggSpec> aggs;
  // True when at least one predicate or aggregate argument (or a
  // count(*)) vectorized; otherwise the columnar path would be the
  // row path with extra steps and the caller stays row-wise.
  bool any_vec = false;
};

ColumnarPlan CompileColumnar(const SelectStmt& stmt, const Relation& header,
                             const storage::ColumnarTable& chunk,
                             const std::vector<const Expr*>& preds,
                             const std::vector<const Expr*>& agg_nodes) {
  ColumnarPlan cp;
  cp.chunk = &chunk;
  for (const Expr* p : preds) {
    ColumnarPlan::PredStep step;
    step.vec = CompileVecPredicate(*p, header, chunk);
    if (step.vec != nullptr) {
      cp.any_vec = true;
    } else {
      step.row = p;
    }
    cp.preds.push_back(std::move(step));
  }
  for (const auto& g : stmt.group_by) {
    ColKeySpec ks;
    if (g->kind == ExprKind::kColumnRef) {
      int slot = header.FindSlot(g->table_qualifier, g->column_name);
      if (slot >= 0) ks.slot = slot;
    }
    if (ks.slot < 0) ks.expr = g.get();
    cp.keys.push_back(std::move(ks));
  }
  for (const Expr* a : agg_nodes) {
    ColAggSpec spec;
    spec.agg = a;
    spec.func = AggFuncOf(*a);
    spec.star = a->star_arg;
    spec.distinct = a->distinct;
    if (spec.star) {
      cp.any_vec = true;  // count(*) folds as a bulk add
    } else if (!a->children.empty()) {
      spec.arg = CompileVecExpr(*a->children[0], header, chunk);
      if (spec.arg != nullptr) cp.any_vec = true;
    }
    cp.aggs.push_back(std::move(spec));
  }
  return cp;
}

// Morsel-private columnar partial: 64-way bucketed group maps (the
// radix superset; every coarser strategy folds subsets of these) plus
// the global-aggregate accumulator for GROUP BY-less queries.
struct ColumnarPartial {
  std::array<std::unordered_map<Row, AggGroup, RowHash, RowEq>, kRadixBuckets>
      buckets;
  size_t group_n = 0;  // distinct groups this morsel saw
  AggGroup global;
  bool global_any = false;
  uint64_t cpu = 0;
  uint64_t scanned = 0;
  uint64_t vec_rows = 0;
  uint64_t dict_hits = 0;
};

// AggUpdate specialized on a vectorized argument lane: identical
// state transitions (count/has_value/promotion/tie rules), minus the
// Value boxing for the numeric cases.
void UpdateAccFromVec(const ColAggSpec& spec, const VecData& vd, size_t k,
                      AggAcc* acc) {
  if (spec.star) {
    ++acc->count;
    return;
  }
  if (vd.IsNull(k)) return;
  if (spec.distinct) {
    acc->distinct.insert(vd.ValueAt(k));
    return;
  }
  ++acc->count;
  acc->has_value = true;
  switch (spec.func) {
    case AggFunc::kMin: {
      Value v = vd.ValueAt(k);
      if (acc->min_v.is_null() || v.Compare(acc->min_v) < 0) {
        acc->min_v = std::move(v);
      }
      return;
    }
    case AggFunc::kMax: {
      Value v = vd.ValueAt(k);
      if (acc->max_v.is_null() || v.Compare(acc->max_v) > 0) {
        acc->max_v = std::move(v);
      }
      return;
    }
    case AggFunc::kSum:
    case AggFunc::kAvg:
      if (vd.type == ValueType::kInt64 && !acc->any_double) {
        acc->isum = ColWrapAdd(acc->isum, vd.i64[k]);
      } else {
        if (!acc->any_double) {
          acc->dsum = static_cast<double>(acc->isum);
          acc->any_double = true;
        }
        acc->dsum += vd.DoubleAt(k);
      }
      return;
    default:
      return;  // count(x) and unknowns only track count/has_value
  }
}

// Whole-slice fold of one aggregate over a global (GROUP BY-less)
// accumulator: the branch-light inner loops of the columnar path.
// Double sums still add element-by-element in selection order so the
// bits match the row path's sequential `dsum +=` exactly (no
// reassociation); the int64 SUM lane accumulates in a 128-bit-wide
// register and folds once — the same wrapped 64-bit result as n
// sequential wrapping adds, by modular arithmetic.
void FoldVecGlobal(const ColAggSpec& spec, const VecData& vd, size_t n,
                   AggAcc* acc) {
  if (spec.star) {
    acc->count += n;
    return;
  }
  if (spec.distinct) {
    for (size_t k = 0; k < n; ++k) {
      if (!vd.IsNull(k)) acc->distinct.insert(vd.ValueAt(k));
    }
    return;
  }
  switch (spec.func) {
    case AggFunc::kSum:
    case AggFunc::kAvg: {
      // Only true kInt64 stays in the int lane: the row path sends
      // kDate sums down the double-promotion branch.
      if (vd.type == ValueType::kInt64 && !acc->any_double) {
        unsigned __int128 wide = 0;
        uint64_t nn = 0;
        if (vd.has_nulls) {
          for (size_t k = 0; k < n; ++k) {
            if (vd.nulls[k]) continue;
            wide += static_cast<uint64_t>(vd.i64[k]);
            ++nn;
          }
        } else {
          for (size_t k = 0; k < n; ++k) {
            wide += static_cast<uint64_t>(vd.i64[k]);
          }
          nn = n;
        }
        acc->count += nn;
        if (nn > 0) {
          acc->has_value = true;
          acc->isum = ColWrapAdd(
              acc->isum, static_cast<int64_t>(static_cast<uint64_t>(wide)));
        }
        return;
      }
      // Double lane (or an already-promoted accumulator): element
      // order must match the row path's per-row adds.
      uint64_t nn = 0;
      for (size_t k = 0; k < n; ++k) {
        if (vd.IsNull(k)) continue;
        ++nn;
        if (!acc->any_double) {
          acc->dsum = static_cast<double>(acc->isum);
          acc->any_double = true;
        }
        acc->dsum += vd.DoubleAt(k);
      }
      acc->count += nn;
      if (nn > 0) acc->has_value = true;
      return;
    }
    case AggFunc::kMin:
    case AggFunc::kMax: {
      const bool want_min = spec.func == AggFunc::kMin;
      uint64_t nn = 0;
      bool have = false;
      if (vd.type != ValueType::kDouble) {
        int64_t best = 0;
        for (size_t k = 0; k < n; ++k) {
          if (vd.IsNull(k)) continue;
          ++nn;
          const int64_t x = vd.i64[k];
          // Strict compare keeps the earliest value on ties, the row
          // path's rule.
          if (!have || (want_min ? x < best : x > best)) {
            best = x;
            have = true;
          }
        }
        if (have) {
          Value bv = vd.type == ValueType::kDate ? Value::Date(best)
                                                 : Value::Int(best);
          Value& slot = want_min ? acc->min_v : acc->max_v;
          if (slot.is_null() ||
              (want_min ? bv.Compare(slot) < 0 : bv.Compare(slot) > 0)) {
            slot = std::move(bv);
          }
        }
      } else {
        double best = 0;
        for (size_t k = 0; k < n; ++k) {
          if (vd.IsNull(k)) continue;
          ++nn;
          const double x = vd.f64[k];
          // `x < best` / `x > best` is false for NaN on either side,
          // mirroring Value::Compare's "NaN compares equal" => keep
          // the earlier value.
          if (!have || (want_min ? x < best : x > best)) {
            best = x;
            have = true;
          }
        }
        if (have) {
          Value bv = Value::Double(best);
          Value& slot = want_min ? acc->min_v : acc->max_v;
          if (slot.is_null() ||
              (want_min ? bv.Compare(slot) < 0 : bv.Compare(slot) > 0)) {
            slot = std::move(bv);
          }
        }
      }
      acc->count += nn;
      if (nn > 0) acc->has_value = true;
      return;
    }
    default: {  // count(x) and unknown funcs
      uint64_t nn = 0;
      if (vd.has_nulls) {
        for (size_t k = 0; k < n; ++k) {
          if (!vd.nulls[k]) ++nn;
        }
      } else {
        nn = n;
      }
      acc->count += nn;
      if (nn > 0) acc->has_value = true;
      return;
    }
  }
}

// Picks the merge fanout from the first wave of morsels (the first
// `threads` in morsel order — the set that completes earliest under
// any scheduling). Uses the MAX partial-group count: the most
// discriminating single-morsel signal a 1024-row window can give.
MergeStrategy ChooseMergeStrategy(const SessionSettings& settings,
                                  const std::vector<ColumnarPartial>& partials,
                                  size_t threads) {
  if (settings.merge_strategy != MergeStrategy::kAuto) {
    return settings.merge_strategy;
  }
  const size_t wave = std::min(threads < 1 ? size_t{1} : threads,
                               partials.size());
  size_t est = 0;
  for (size_t i = 0; i < wave; ++i) {
    est = std::max(est, partials[i].group_n);
  }
  if (est <= kCentralMaxGroups) return MergeStrategy::kCentral;
  if (est >= kRadixMinGroups) return MergeStrategy::kRadix;
  return MergeStrategy::kPartitioned;
}

// Folds every partial's bucket `b` into one ordered per-bucket group
// map, in morsel-index order — the same op-for-op discipline (and the
// same charge structure) as MergeMorselPartials, so the bits never
// depend on thread count or strategy.
void MergeColumnarBucket(std::vector<ColumnarPartial>* partials,
                         const std::vector<const Expr*>& agg_nodes, size_t b,
                         GroupMap* gm, uint64_t* cpu) {
  for (size_t mi = 0; mi < partials->size(); ++mi) {
    for (auto& [key, lg] : (*partials)[mi].buckets[b]) {
      ++*cpu;
      auto [it, inserted] = gm->try_emplace(key);
      if (inserted) {
        it->second = std::move(lg);
        continue;
      }
      for (size_t ai = 0; ai < agg_nodes.size(); ++ai) {
        ++*cpu;
        AggMerge(&it->second.accs[ai], lg.accs[ai], *agg_nodes[ai]);
      }
    }
  }
  // Ordered-map residency charge, the analogue of the row path's
  // sequential fold into the canonical GroupMap.
  *cpu += gm->size();
}

struct ColumnarMerged {
  std::array<GroupMap, kRadixBuckets> buckets;
  std::array<uint64_t, kRadixBuckets> cpu{};
};

// Runs the bucket merges under the chosen strategy. Central charges
// the work as sequential critical path; partitioned and radix charge
// it as parallel (the cost model divides by exec_threads).
Status MergeColumnarPartials(ThreadPool* pool, MergeStrategy strat,
                             std::vector<ColumnarPartial>* partials,
                             const std::vector<const Expr*>& agg_nodes,
                             ColumnarMerged* merged, ExecStats* stats) {
  auto merge_bucket = [&](size_t b) {
    MergeColumnarBucket(partials, agg_nodes, b, &merged->buckets[b],
                        &merged->cpu[b]);
  };
  switch (strat) {
    case MergeStrategy::kCentral: {
      for (size_t b = 0; b < kRadixBuckets; ++b) merge_bucket(b);
      for (uint64_t c : merged->cpu) stats->cpu_ops += c;
      return Status::OK();
    }
    case MergeStrategy::kPartitioned: {
      APUAMA_RETURN_NOT_OK(ParallelFor(
          pool, 0, kMergePartitions, [&](size_t p) -> Status {
            for (size_t b = p; b < kRadixBuckets; b += kMergePartitions) {
              merge_bucket(b);
            }
            return Status::OK();
          }));
      break;
    }
    default: {  // kRadix (kAuto resolved before this point)
      APUAMA_RETURN_NOT_OK(
          ParallelFor(pool, 0, kRadixBuckets, [&](size_t b) -> Status {
            merge_bucket(b);
            return Status::OK();
          }));
      break;
    }
  }
  for (uint64_t c : merged->cpu) {
    stats->cpu_ops += c;
    stats->cpu_ops_parallel += c;
  }
  return Status::OK();
}

// One output expression (or ORDER BY key) the fast finalize tail can
// compute without Eval: a finalized aggregate, a group-key column
// gathered from the representative row, a literal, or (order keys
// only) a copy of an already-computed output slot.
struct FastItem {
  enum class Kind { kAgg, kSlot, kLit, kOutSlot };
  Kind kind = Kind::kLit;
  size_t idx = 0;  // agg index / header slot / output slot
  const Expr* lit = nullptr;
};

struct FastFinalizePlan {
  std::vector<FastItem> items;
  std::vector<FastItem> okeys;
  std::vector<bool> desc;
};

// The fast tail covers the common aggregate shapes (bare aggregates,
// group columns, literals, no HAVING); anything richer falls back to
// the shared FinalizeGroups, which is sequential but fully general.
bool PlanFastFinalize(const SelectStmt& stmt, const Relation& header,
                      const std::vector<const Expr*>& agg_nodes,
                      const std::vector<std::string>& out_names,
                      FastFinalizePlan* fp) {
  if (stmt.having) return false;
  auto classify = [&](const Expr& e, FastItem* fi) -> bool {
    for (size_t ai = 0; ai < agg_nodes.size(); ++ai) {
      if (agg_nodes[ai] == &e) {
        fi->kind = FastItem::Kind::kAgg;
        fi->idx = ai;
        return true;
      }
    }
    if (e.kind == ExprKind::kColumnRef) {
      int slot = header.FindSlot(e.table_qualifier, e.column_name);
      if (slot >= 0) {
        fi->kind = FastItem::Kind::kSlot;
        fi->idx = static_cast<size_t>(slot);
        return true;
      }
      return false;
    }
    if (e.kind == ExprKind::kLiteral) {
      fi->kind = FastItem::Kind::kLit;
      fi->lit = &e;
      return true;
    }
    return false;
  };
  for (const auto& it : stmt.items) {
    FastItem fi;
    if (!it.expr || !classify(*it.expr, &fi)) return false;
    fp->items.push_back(fi);
  }
  for (const auto& o : stmt.order_by) {
    FastItem fk;
    int slot = OrderOutputSlot(o, out_names);
    if (slot >= 0) {
      fk.kind = FastItem::Kind::kOutSlot;
      fk.idx = static_cast<size_t>(slot);
    } else if (!classify(*o.expr, &fk)) {
      return false;
    }
    fp->okeys.push_back(fk);
    fp->desc.push_back(o.desc);
  }
  return true;
}

// One finalized output row plus its sort key and a pointer to its
// group key (stable: the per-bucket maps outlive the k-way merge).
struct FastRow {
  Row skey;
  const Row* gkey = nullptr;
  Row out;
};

// Finalizes one merged bucket into sorted FastRows. Projection is
// charged at the vectorized slice rate; the bucket-local sort charges
// one op per comparison, exactly like SortRows.
uint64_t FastFinalizeBucket(const GroupMap& gm, const FastFinalizePlan& fp,
                            const std::vector<const Expr*>& agg_nodes,
                            std::vector<FastRow>* rows) {
  uint64_t cpu = 0;
  rows->reserve(gm.size());
  for (const auto& [key, grp] : gm) {
    Row out;
    out.reserve(fp.items.size());
    auto value_of = [&](const FastItem& fi) -> Value {
      switch (fi.kind) {
        case FastItem::Kind::kAgg:
          return AggFinalize(grp.accs[fi.idx], *agg_nodes[fi.idx]);
        case FastItem::Kind::kSlot:
          return grp.repr[fi.idx];
        case FastItem::Kind::kOutSlot:
          return out[fi.idx];
        default:
          return fi.lit->literal;
      }
    };
    for (const FastItem& fi : fp.items) out.push_back(value_of(fi));
    Row skey;
    skey.reserve(fp.okeys.size());
    for (const FastItem& fk : fp.okeys) skey.push_back(value_of(fk));
    rows->push_back(FastRow{std::move(skey), &key, std::move(out)});
  }
  cpu += (fp.items.size() + fp.okeys.size()) *
         VecOps(gm.size());
  if (!fp.okeys.empty()) {
    std::stable_sort(rows->begin(), rows->end(),
                     [&fp, &cpu](const FastRow& a, const FastRow& b) {
                       ++cpu;
                       for (size_t i = 0; i < a.skey.size(); ++i) {
                         int c = a.skey[i].Compare(b.skey[i]);
                         if (c != 0) return fp.desc[i] ? c > 0 : c < 0;
                       }
                       return false;
                     });
  }
  return cpu;
}

// True when `a` orders strictly before `b` under (sort key with
// per-key direction, then group key). Buckets are sorted by sort key
// with a STABLE sort of group-key-ordered input, so this comparator
// makes the k-way bucket merge reproduce FinalizeGroups' order
// exactly: group keys are unique, so the tie-break is total.
bool FastRowBefore(const FastRow& a, const FastRow& b,
                   const std::vector<bool>& desc) {
  for (size_t i = 0; i < a.skey.size(); ++i) {
    int c = a.skey[i].Compare(b.skey[i]);
    if (c != 0) return desc[i] ? c > 0 : c < 0;
  }
  return storage::KeyLess{}(*a.gkey, *b.gkey);
}

}  // namespace

Result<QueryResult> Executor::ProjectOnly(const SelectStmt& stmt,
                                          Relation rel,
                                          const EvalScope* outer) {
  QueryResult qr;
  // Output naming.
  std::vector<const Expr*> item_exprs;
  for (const auto& it : stmt.items) {
    if (it.star) {
      for (const auto& cb : rel.columns) qr.column_names.push_back(cb.name);
    } else {
      qr.column_names.push_back(OutputName(it, qr.column_names.size()));
    }
  }

  ColumnResolver resolver(&rel);
  EvalScope scope{&resolver, nullptr, outer};
  EvalContext ctx;
  ctx.scope = &scope;
  ctx.executor = this;
  ctx.cpu_ops = &stats_->cpu_ops;

  std::vector<bool> desc;
  for (const auto& o : stmt.order_by) desc.push_back(o.desc);

  std::vector<std::pair<Row, Row>> keyed;  // (sort key, output row)
  keyed.reserve(rel.rows.size());
  for (const Row& r : rel.rows) {
    scope.row = &r;
    Row out;
    for (const auto& it : stmt.items) {
      if (it.star) {
        out.insert(out.end(), r.begin(), r.end());
      } else {
        APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*it.expr, ctx));
        out.push_back(std::move(v));
      }
    }
    Row key;
    for (const auto& o : stmt.order_by) {
      int slot = OrderOutputSlot(o, qr.column_names);
      if (slot >= 0) {
        key.push_back(out[static_cast<size_t>(slot)]);
      } else {
        APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*o.expr, ctx));
        key.push_back(std::move(v));
      }
    }
    keyed.emplace_back(std::move(key), std::move(out));
  }

  if (!stmt.order_by.empty()) {
    SortRows(&keyed, desc, &stats_->cpu_ops);
  }
  qr.rows.reserve(keyed.size());
  for (auto& [k, out] : keyed) qr.rows.push_back(std::move(out));
  if (stmt.distinct) DedupePreservingOrder(&qr.rows);
  ApplyOffsetLimit(stmt, &qr.rows);
  return qr;
}

Result<QueryResult> Executor::AggregateAndProject(const SelectStmt& stmt,
                                                  Relation rel,
                                                  const EvalScope* outer) {
  std::vector<const Expr*> agg_nodes = CollectAggInventory(stmt);
  for (const auto& it : stmt.items) {
    if (it.star) {
      return Status::Unsupported("SELECT * with aggregation");
    }
  }

  ColumnResolver resolver(&rel);
  EvalScope scope{&resolver, nullptr, outer};
  EvalContext ctx;
  ctx.scope = &scope;
  ctx.executor = this;
  ctx.cpu_ops = &stats_->cpu_ops;

  GroupMap groups;
  for (const Row& r : rel.rows) {
    scope.row = &r;
    Row key;
    key.reserve(stmt.group_by.size());
    for (const auto& g : stmt.group_by) {
      APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*g, ctx));
      key.push_back(std::move(v));
    }
    auto [it, inserted] = groups.try_emplace(std::move(key));
    AggGroup& grp = it->second;
    if (inserted) {
      grp.repr = r;
      grp.accs.resize(agg_nodes.size());
    }
    for (size_t ai = 0; ai < agg_nodes.size(); ++ai) {
      const Expr& agg = *agg_nodes[ai];
      ++stats_->cpu_ops;
      if (agg.star_arg) {
        AggUpdate(&grp.accs[ai], agg, Value::Null());
      } else {
        APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*agg.children[0], ctx));
        AggUpdate(&grp.accs[ai], agg, v);
      }
    }
  }

  // Global aggregate over empty input still yields one group.
  if (groups.empty() && stmt.group_by.empty()) {
    AggGroup g;
    g.repr = Row(rel.columns.size(), Value::Null());
    g.accs.resize(agg_nodes.size());
    groups.emplace(Row{}, std::move(g));
  }

  return FinalizeGroups(this, stats_, stmt, rel, &groups, agg_nodes, outer);
}

// ---------------------------------------------------------------------------
// Morsel-driven intra-node parallel aggregation
// ---------------------------------------------------------------------------

bool Executor::MorselEligible(const SelectStmt& stmt,
                              const EvalScope* outer) const {
  if (outer != nullptr) return false;  // correlated context
  if (!db_->settings()->enable_morsel_exec) return false;
  if (stmt.from.size() != 1) return false;  // joins stay sequential
  for (const auto& item : stmt.items) {
    if (item.star) return false;
  }
  // Morsel workers run without an executor, so any subquery anywhere
  // in the statement forces the sequential pipeline.
  return !StmtHasSubquery(stmt);
}

Result<QueryResult> Executor::ExecuteMorselAggregate(const SelectStmt& stmt) {
  // Resolve the single FROM table.
  APUAMA_ASSIGN_OR_RETURN(
      const storage::Table* tp,
      static_cast<const storage::Catalog*>(db_->catalog())
          ->GetTable(stmt.from[0].table));
  const storage::Table& t = *tp;
  FromBinding fb;
  fb.binding = ToLower(stmt.from[0].binding());
  fb.table = tp;

  // With one table every WHERE conjunct is a scan predicate (subquery
  // predicates were ruled out by eligibility).
  std::vector<const Expr*> preds = sql::SplitConjuncts(stmt.where.get());

  APUAMA_ASSIGN_OR_RETURN(ScanPlan plan, PlanScan(fb, preds, nullptr));

  // Aggregate inventory, same as the sequential pipeline.
  std::vector<const Expr*> agg_nodes = CollectAggInventory(stmt);

  Relation header;
  header.columns.reserve(t.schema().num_columns());
  for (const auto& col : t.schema().columns()) {
    header.columns.push_back(ColumnBinding{fb.binding, col.name});
  }

  // Column-major fast path: when enabled and anything in the query
  // vectorizes, process the morsels as column slices. Falls through
  // to the row pipeline (byte-for-byte the pre-columnar behavior)
  // when disabled, when nothing vectorizes, or for index-order scans
  // (their position lists defeat contiguous column slices).
  if (db_->settings()->enable_columnar_exec &&
      plan.path != AccessPath::kSecondaryIndex) {
    APUAMA_ASSIGN_OR_RETURN(
        std::optional<QueryResult> cqr,
        ExecuteColumnarAggregate(stmt, t, plan, preds, agg_nodes, header));
    if (cqr.has_value()) return std::move(*cqr);
  }

  // Coordinator-only spans: per-morsel worker spans would make trace
  // shape depend on thread timing, so only the pipeline phases are
  // traced (identical at any exec_threads).
  obs::Span agg_span =
      obs::Tracer::Global().StartSpan("morsel.aggregate", "morsel");

  ScanMorsels sm = TouchAndMorselize(t, plan);
  const std::vector<storage::Table::Morsel>& morsels = sm.morsels;
  if (agg_span.active()) {
    agg_span.AddAttr("morsels", static_cast<int64_t>(morsels.size()));
  }

  std::vector<MorselPartial> partials(morsels.size());

  auto run_morsel = [&](size_t mi) -> Status {
    MorselPartial& part = partials[mi];
    ColumnResolver resolver(&header);
    EvalScope scope{&resolver, nullptr, nullptr};
    EvalContext ctx;
    ctx.scope = &scope;
    ctx.executor = nullptr;  // eligibility guaranteed no subqueries
    ctx.cpu_ops = &part.cpu;
    for (size_t j = morsels[mi].begin; j < morsels[mi].end; ++j) {
      const size_t pos = sm.by_position_list ? plan.index_positions[j] : j;
      const Row& r = t.row(pos);
      ++part.scanned;
      scope.row = &r;
      bool keep = true;
      for (const Expr* p : preds) {
        APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*p, ctx));
        if (Truthiness(v) != 1) {
          keep = false;
          break;
        }
      }
      if (!keep) continue;
      APUAMA_RETURN_NOT_OK(AccumulateRow(stmt, agg_nodes, ctx, r, &part));
    }
    return Status::OK();
  };

  int want = db_->settings()->exec_threads;
  if (want < 1) want = 1;
  const size_t threads =
      morsels.empty()
          ? 1
          : std::min<size_t>(static_cast<size_t>(want), morsels.size());
  ThreadPool* pool = threads > 1 ? db_->exec_pool() : nullptr;
  {
    obs::Span scan_span =
        obs::Tracer::Global().StartSpan("morsel.scan", "morsel");
    APUAMA_RETURN_NOT_OK(ParallelFor(pool, 0, morsels.size(), run_morsel));
  }

  stats_->morsels += morsels.size();
  if (static_cast<uint32_t>(threads) > stats_->exec_threads) {
    stats_->exec_threads = static_cast<uint32_t>(threads);
  }

  for (const MorselPartial& part : partials) {
    stats_->tuples_scanned += part.scanned;
    stats_->cpu_ops += part.cpu;
    stats_->cpu_ops_parallel += part.cpu;
  }

  obs::Span merge_span =
      obs::Tracer::Global().StartSpan("morsel.merge", "morsel");
  APUAMA_ASSIGN_OR_RETURN(
      GroupMap groups,
      MergeMorselPartials(pool, &partials, agg_nodes, stats_));
  merge_span.End();

  // Global aggregate over empty input still yields one group.
  if (groups.empty() && stmt.group_by.empty()) {
    AggGroup g;
    g.repr = Row(header.columns.size(), Value::Null());
    g.accs.resize(agg_nodes.size());
    groups.emplace(Row{}, std::move(g));
  }

  return FinalizeGroups(this, stats_, stmt, header, &groups, agg_nodes,
                        nullptr);
}

Result<std::optional<QueryResult>> Executor::ExecuteColumnarAggregate(
    const SelectStmt& stmt, const storage::Table& t, const ScanPlan& plan,
    const std::vector<const Expr*>& preds,
    const std::vector<const Expr*>& agg_nodes, const Relation& header) {
  // Chunk lookup + compilation are side-effect free until the plan
  // commits, so a fallback leaves no stats residue. The chunk itself
  // is (re)built here on the coordinator — the cache is not
  // thread-safe and must not be touched after morsels fan out.
  storage::ColumnStore::GetResult chunk = db_->column_store()->Get(t);
  ColumnarPlan cp =
      CompileColumnar(stmt, header, *chunk.chunk, preds, agg_nodes);
  if (!cp.any_vec) return std::optional<QueryResult>();

  if (chunk.built) ++stats_->columnar_chunks_built;
  if (chunk.rebuilt) ++stats_->columnar_chunk_rebuilds;

  obs::Span agg_span =
      obs::Tracer::Global().StartSpan("morsel.aggregate.columnar", "morsel");

  ScanMorsels sm = TouchAndMorselize(t, plan);
  const std::vector<storage::Table::Morsel>& morsels = sm.morsels;
  if (agg_span.active()) {
    agg_span.AddAttr("morsels", static_cast<int64_t>(morsels.size()));
  }

  const bool global = stmt.group_by.empty();
  std::vector<ColumnarPartial> partials(morsels.size());

  auto run_morsel = [&](size_t mi) -> Status {
    ColumnarPartial& part = partials[mi];
    // Selection vector: heap positions surviving the predicates so
    // far. Seq and clustered-range morsels are contiguous position
    // ranges, so the initial selection is dense.
    std::vector<uint32_t> sel;
    sel.reserve(morsels[mi].end - morsels[mi].begin);
    for (size_t pos = morsels[mi].begin; pos < morsels[mi].end; ++pos) {
      sel.push_back(static_cast<uint32_t>(pos));
    }
    part.scanned += sel.size();

    // Row-wise fallback machinery, used only by non-vectorizable
    // predicates / arguments / key expressions.
    ColumnResolver resolver(&header);
    EvalScope scope{&resolver, nullptr, nullptr};
    EvalContext ctx;
    ctx.scope = &scope;
    ctx.executor = nullptr;  // eligibility guaranteed no subqueries
    ctx.cpu_ops = &part.cpu;

    for (const ColumnarPlan::PredStep& step : cp.preds) {
      if (sel.empty()) break;
      if (step.vec != nullptr) {
        APUAMA_RETURN_NOT_OK(FilterVec(*step.vec, *cp.chunk, &sel, &part.cpu,
                                       &part.vec_rows, &part.dict_hits));
      } else {
        std::vector<uint32_t> keep;
        keep.reserve(sel.size());
        for (uint32_t pos : sel) {
          scope.row = &t.row(pos);
          APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*step.row, ctx));
          if (Truthiness(v) == 1) keep.push_back(pos);
        }
        sel = std::move(keep);
      }
    }
    if (sel.empty()) return Status::OK();
    const size_t n = sel.size();

    // One kernel pass per vectorized aggregate argument over the
    // final selection — computed once, shared by every group.
    std::vector<VecData> argv(cp.aggs.size());
    for (size_t ai = 0; ai < cp.aggs.size(); ++ai) {
      if (cp.aggs[ai].arg != nullptr) {
        APUAMA_RETURN_NOT_OK(EvalVec(*cp.aggs[ai].arg, *cp.chunk, sel,
                                     &argv[ai], &part.cpu, &part.vec_rows));
      }
    }

    if (global) {
      AggGroup& g = part.global;
      if (!part.global_any) {
        g.repr = t.row(sel[0]);
        g.accs.resize(cp.aggs.size());
        part.global_any = true;
      }
      for (size_t ai = 0; ai < cp.aggs.size(); ++ai) {
        const ColAggSpec& spec = cp.aggs[ai];
        if (spec.star || spec.arg != nullptr) {
          part.cpu += VecOps(n);
          part.vec_rows += spec.star ? n : 0;
          FoldVecGlobal(spec, argv[ai], n, &g.accs[ai]);
        } else {
          for (uint32_t pos : sel) {
            scope.row = &t.row(pos);
            ++part.cpu;
            APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*spec.agg->children[0], ctx));
            AggUpdate(&g.accs[ai], *spec.agg, v);
          }
        }
      }
      return Status::OK();
    }

    // Grouped: gather the key per row (slot copy or Eval fallback),
    // bucket it, and fold each aggregate from its argument vector.
    for (size_t k = 0; k < n; ++k) {
      const uint32_t pos = sel[k];
      const Row& r = t.row(pos);
      Row key;
      key.reserve(cp.keys.size());
      for (const ColKeySpec& ks : cp.keys) {
        if (ks.slot >= 0) {
          key.push_back(r[static_cast<size_t>(ks.slot)]);
        } else {
          scope.row = &r;
          APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*ks.expr, ctx));
          key.push_back(std::move(v));
        }
      }
      // Key gather + hash + group lookup: one op per row, same rate
      // as the row path's AccumulateRow bucketing.
      ++part.cpu;
      const size_t bucket = RowHash{}(key) % kRadixBuckets;
      auto [it, inserted] = part.buckets[bucket].try_emplace(std::move(key));
      AggGroup& grp = it->second;
      if (inserted) {
        grp.repr = r;
        grp.accs.resize(cp.aggs.size());
        ++part.group_n;
      }
      for (size_t ai = 0; ai < cp.aggs.size(); ++ai) {
        const ColAggSpec& spec = cp.aggs[ai];
        if (spec.star || spec.arg != nullptr) {
          UpdateAccFromVec(spec, argv[ai], k, &grp.accs[ai]);
        } else {
          scope.row = &r;
          ++part.cpu;
          APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*spec.agg->children[0], ctx));
          AggUpdate(&grp.accs[ai], *spec.agg, v);
        }
      }
    }
    // Vectorized accumulator updates charge at the slice rate, one
    // pass per vectorized aggregate.
    for (const ColAggSpec& spec : cp.aggs) {
      if (spec.star || spec.arg != nullptr) {
        part.cpu += VecOps(n);
        part.vec_rows += spec.star ? n : 0;
      }
    }
    return Status::OK();
  };

  int want = db_->settings()->exec_threads;
  if (want < 1) want = 1;
  const size_t threads =
      morsels.empty()
          ? 1
          : std::min<size_t>(static_cast<size_t>(want), morsels.size());
  ThreadPool* pool = threads > 1 ? db_->exec_pool() : nullptr;
  {
    obs::Span scan_span =
        obs::Tracer::Global().StartSpan("morsel.scan.columnar", "morsel");
    APUAMA_RETURN_NOT_OK(ParallelFor(pool, 0, morsels.size(), run_morsel));
  }

  stats_->morsels += morsels.size();
  if (static_cast<uint32_t>(threads) > stats_->exec_threads) {
    stats_->exec_threads = static_cast<uint32_t>(threads);
  }
  for (const ColumnarPartial& part : partials) {
    stats_->tuples_scanned += part.scanned;
    stats_->cpu_ops += part.cpu;
    stats_->cpu_ops_parallel += part.cpu;
    stats_->vectorized_rows += part.vec_rows;
    stats_->dict_hits += part.dict_hits;
  }

  if (global) {
    // GROUP BY-less: one accumulator per morsel, folded sequentially
    // in morsel order (a central merge by definition).
    ++stats_->merge_central;
    GroupMap groups;
    AggGroup g;
    bool any = false;
    uint64_t mcpu = 0;
    for (ColumnarPartial& part : partials) {
      if (!part.global_any) continue;
      ++mcpu;
      if (!any) {
        g = std::move(part.global);
        any = true;
        continue;
      }
      for (size_t ai = 0; ai < agg_nodes.size(); ++ai) {
        ++mcpu;
        AggMerge(&g.accs[ai], part.global.accs[ai], *agg_nodes[ai]);
      }
    }
    stats_->cpu_ops += mcpu;
    if (!any) {
      // Global aggregate over empty input still yields one group.
      g.repr = Row(header.columns.size(), Value::Null());
      g.accs.resize(agg_nodes.size());
    }
    ++stats_->cpu_ops;
    groups.emplace(Row{}, std::move(g));
    APUAMA_ASSIGN_OR_RETURN(
        QueryResult fq, FinalizeGroups(this, stats_, stmt, header, &groups,
                                       agg_nodes, nullptr));
    return std::optional<QueryResult>(std::move(fq));
  }

  const MergeStrategy strat =
      ChooseMergeStrategy(*db_->settings(), partials, threads);
  switch (strat) {
    case MergeStrategy::kCentral:
      ++stats_->merge_central;
      break;
    case MergeStrategy::kPartitioned:
      ++stats_->merge_partitioned;
      break;
    default:
      ++stats_->merge_radix;
      break;
  }

  obs::Span merge_span =
      obs::Tracer::Global().StartSpan("morsel.merge.columnar", "morsel");
  if (merge_span.active()) {
    merge_span.AddAttr("strategy", static_cast<int64_t>(strat));
  }
  auto merged = std::make_unique<ColumnarMerged>();
  APUAMA_RETURN_NOT_OK(MergeColumnarPartials(pool, strat, &partials,
                                             agg_nodes, merged.get(), stats_));
  merge_span.End();

  std::vector<std::string> out_names;
  for (const auto& it : stmt.items) {
    out_names.push_back(OutputName(it, out_names.size()));
  }
  FastFinalizePlan fp;
  if (!PlanFastFinalize(stmt, header, agg_nodes, out_names, &fp)) {
    // General tail: fold the buckets into the canonical ordered map
    // (bucket order is irrelevant — the map sorts) and run the shared
    // sequential finalizer.
    GroupMap groups;
    for (GroupMap& gm : merged->buckets) {
      for (auto& [key, g] : gm) {
        ++stats_->cpu_ops;
        groups.emplace(key, std::move(g));
      }
    }
    APUAMA_ASSIGN_OR_RETURN(
        QueryResult fq, FinalizeGroups(this, stats_, stmt, header, &groups,
                                       agg_nodes, nullptr));
    return std::optional<QueryResult>(std::move(fq));
  }

  // Fast tail: per-bucket projection + sort runs under the same
  // parallel structure as the merge (central stays sequential), then
  // a sequential k-way merge stitches the bucket runs together.
  auto frows = std::make_unique<std::array<std::vector<FastRow>,
                                           kRadixBuckets>>();
  std::array<uint64_t, kRadixBuckets> fcpu{};
  auto finalize_bucket = [&](size_t b) {
    fcpu[b] =
        FastFinalizeBucket(merged->buckets[b], fp, agg_nodes, &(*frows)[b]);
  };
  if (strat == MergeStrategy::kCentral) {
    for (size_t b = 0; b < kRadixBuckets; ++b) finalize_bucket(b);
    for (uint64_t c : fcpu) stats_->cpu_ops += c;
  } else {
    const size_t tasks =
        strat == MergeStrategy::kPartitioned ? kMergePartitions : kRadixBuckets;
    APUAMA_RETURN_NOT_OK(ParallelFor(pool, 0, tasks, [&](size_t p) -> Status {
      for (size_t b = p; b < kRadixBuckets; b += tasks) finalize_bucket(b);
      return Status::OK();
    }));
    for (uint64_t c : fcpu) {
      stats_->cpu_ops += c;
      stats_->cpu_ops_parallel += c;
    }
  }

  QueryResult qr;
  qr.column_names = std::move(out_names);
  size_t total = 0;
  for (const auto& v : *frows) total += v.size();
  qr.rows.reserve(total);
  std::array<size_t, kRadixBuckets> cursor{};
  for (size_t produced = 0; produced < total; ++produced) {
    size_t best = kRadixBuckets;
    for (size_t b = 0; b < kRadixBuckets; ++b) {
      if (cursor[b] >= (*frows)[b].size()) continue;
      if (best == kRadixBuckets ||
          FastRowBefore((*frows)[b][cursor[b]], (*frows)[best][cursor[best]],
                        fp.desc)) {
        best = b;
      }
    }
    qr.rows.push_back(std::move((*frows)[best][cursor[best]].out));
    ++cursor[best];
    ++stats_->cpu_ops;
  }
  if (stmt.distinct) DedupePreservingOrder(&qr.rows);
  ApplyOffsetLimit(stmt, &qr.rows);
  return std::optional<QueryResult>(std::move(qr));
}

Executor::ScanMorsels Executor::TouchAndMorselize(const storage::Table& t,
                                                  const ScanPlan& plan) {
  // All buffer-pool traffic happens here on the coordinator, in
  // exactly the order the sequential scan touches pages: the pool is
  // not thread-safe, and LRU state must not depend on worker timing.
  auto touch = [&](size_t pos) {
    bool hit = db_->buffer_pool()->Touch(t.PageOfPosition(pos));
    if (hit) {
      ++stats_->pages_cache;
    } else {
      ++stats_->pages_disk;
    }
  };
  const size_t rpp = t.rows_per_page();
  ScanMorsels sm;
  switch (plan.path) {
    case AccessPath::kSeqScan: {
      for (size_t pos = 0; pos < t.num_rows(); ++pos) {
        if (pos % rpp == 0) touch(pos);
      }
      sm.morsels = t.Morsels(0, t.num_rows(), kMorselRows);
      break;
    }
    case AccessPath::kClusteredRange: {
      size_t last_page = SIZE_MAX;
      for (size_t pos = plan.range_begin; pos < plan.range_end; ++pos) {
        size_t pg = pos / rpp;
        if (pg != last_page) {
          touch(pos);
          last_page = pg;
        }
      }
      sm.morsels = t.Morsels(plan.range_begin, plan.range_end, kMorselRows);
      break;
    }
    case AccessPath::kSecondaryIndex: {
      size_t last_page = SIZE_MAX;
      for (size_t pos : plan.index_positions) {
        size_t pg = pos / rpp;
        if (pg != last_page) {
          touch(pos);
          last_page = pg;
        }
      }
      // Morselize the sorted position list itself.
      for (size_t i = 0; i < plan.index_positions.size(); i += kMorselRows) {
        sm.morsels.push_back(storage::Table::Morsel{
            i, std::min(i + kMorselRows, plan.index_positions.size())});
      }
      sm.by_position_list = true;
      break;
    }
  }
  return sm;
}

// ---------------------------------------------------------------------------
// Inter-query shared morsel scans
// ---------------------------------------------------------------------------

namespace {
// Same aggregation test ExecuteSelect applies before choosing a
// pipeline; the shared scan only handles aggregate consumers.
bool StmtHasAggregation(const SelectStmt& stmt) {
  if (!stmt.group_by.empty()) return true;
  for (const auto& it : stmt.items) {
    if (it.expr && sql::ContainsAggregate(*it.expr)) return true;
  }
  if (stmt.having && sql::ContainsAggregate(*stmt.having)) return true;
  for (const auto& o : stmt.order_by) {
    if (sql::ContainsAggregate(*o.expr)) return true;
  }
  return false;
}
}  // namespace

std::optional<std::vector<Result<QueryResult>>>
Executor::ExecuteSharedAggregates(
    Database* db, const std::vector<const sql::SelectStmt*>& stmts,
    ExecStats* batch_stats) {
  const size_t n = stmts.size();
  if (n < 2) return std::nullopt;

  // Per-query stats keep solo counter semantics (cpu, scanned,
  // morsels, access-path flags); only page traffic lands exclusively
  // in batch_stats, because pages really are touched once.
  std::vector<ExecStats> qstats(n);
  std::vector<Executor> execs;
  execs.reserve(n);
  for (size_t i = 0; i < n; ++i) execs.emplace_back(db, &qstats[i]);

  // Every statement must be a morsel-eligible aggregate over one
  // common table. All checks up to TouchAndMorselize are free of
  // observable side effects, so a nullopt here leaves no residue.
  const std::string table_name = stmts[0]->from.empty()
                                     ? std::string()
                                     : ToLower(stmts[0]->from[0].table);
  if (table_name.empty()) return std::nullopt;
  for (size_t i = 0; i < n; ++i) {
    if (!StmtHasAggregation(*stmts[i])) return std::nullopt;
    if (!execs[i].MorselEligible(*stmts[i], nullptr)) return std::nullopt;
    if (ToLower(stmts[i]->from[0].table) != table_name) return std::nullopt;
  }

  auto table_result =
      static_cast<const storage::Catalog*>(db->catalog())
          ->GetTable(table_name);
  if (!table_result.ok()) return std::nullopt;
  const storage::Table& t = **table_result;

  std::vector<FromBinding> fbs(n);
  std::vector<std::vector<const Expr*>> preds(n);
  std::vector<ScanPlan> plans;
  plans.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    fbs[i].binding = ToLower(stmts[i]->from[0].binding());
    fbs[i].table = &t;
    preds[i] = sql::SplitConjuncts(stmts[i]->where.get());
    auto plan = execs[i].PlanScan(fbs[i], preds[i], nullptr);
    if (!plan.ok()) return std::nullopt;
    plans.push_back(std::move(plan).value());
  }
  // One scan can only feed consumers that read the same positions in
  // the same order: identical access path, range, and position list.
  for (size_t i = 1; i < n; ++i) {
    if (plans[i].path != plans[0].path ||
        plans[i].range_begin != plans[0].range_begin ||
        plans[i].range_end != plans[0].range_end ||
        plans[i].index_positions != plans[0].index_positions) {
      return std::nullopt;
    }
  }
  const ScanPlan& plan = plans[0];

  std::vector<std::vector<const Expr*>> agg_nodes(n);
  std::vector<Relation> headers(n);
  for (size_t i = 0; i < n; ++i) {
    agg_nodes[i] = CollectAggInventory(*stmts[i]);
    headers[i].columns.reserve(t.schema().num_columns());
    for (const auto& col : t.schema().columns()) {
      headers[i].columns.push_back(ColumnBinding{fbs[i].binding, col.name});
    }
  }

  // The point of no return: pages are touched (once, into
  // batch_stats, in the sequential scan's order).
  Executor batch_exec(db, batch_stats);
  ScanMorsels sm = batch_exec.TouchAndMorselize(t, plan);
  const std::vector<storage::Table::Morsel>& morsels = sm.morsels;

  // partials[i][mi]: query i's private state for morsel mi — the
  // exact decomposition solo execution uses, so merges are
  // bit-identical.
  std::vector<std::vector<MorselPartial>> partials(n);
  for (auto& p : partials) p.resize(morsels.size());

  auto run_morsel = [&](size_t mi) -> Status {
    std::vector<ColumnResolver> resolvers;
    std::vector<EvalScope> scopes(n);
    std::vector<EvalContext> ctxs(n);
    resolvers.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      resolvers.emplace_back(&headers[i]);
    }
    for (size_t i = 0; i < n; ++i) {
      scopes[i].resolver = &resolvers[i];
      ctxs[i].scope = &scopes[i];
      ctxs[i].executor = nullptr;  // eligibility guaranteed no subqueries
      ctxs[i].cpu_ops = &partials[i][mi].cpu;
    }
    for (size_t j = morsels[mi].begin; j < morsels[mi].end; ++j) {
      const size_t pos = sm.by_position_list ? plan.index_positions[j] : j;
      const Row& r = t.row(pos);
      for (size_t i = 0; i < n; ++i) {
        MorselPartial& part = partials[i][mi];
        ++part.scanned;
        scopes[i].row = &r;
        bool keep = true;
        for (const Expr* p : preds[i]) {
          APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*p, ctxs[i]));
          if (Truthiness(v) != 1) {
            keep = false;
            break;
          }
        }
        if (!keep) continue;
        APUAMA_RETURN_NOT_OK(
            AccumulateRow(*stmts[i], agg_nodes[i], ctxs[i], r, &part));
      }
    }
    return Status::OK();
  };

  int want = db->settings()->exec_threads;
  if (want < 1) want = 1;
  const size_t threads =
      morsels.empty()
          ? 1
          : std::min<size_t>(static_cast<size_t>(want), morsels.size());
  ThreadPool* pool = threads > 1 ? db->exec_pool() : nullptr;
  if (!ParallelFor(pool, 0, morsels.size(), run_morsel).ok()) {
    // A row-level evaluation error aborts the whole batch; solo
    // fallback re-runs each query and surfaces its own error.
    return std::nullopt;
  }

  std::vector<Result<QueryResult>> results;
  results.reserve(n);
  uint64_t rows_scanned_once = 0;
  for (const MorselPartial& part : partials[0]) {
    rows_scanned_once += part.scanned;
  }
  for (size_t i = 0; i < n; ++i) {
    ExecStats& qs = qstats[i];
    qs.morsels += morsels.size();
    if (static_cast<uint32_t>(threads) > qs.exec_threads) {
      qs.exec_threads = static_cast<uint32_t>(threads);
    }
    for (const MorselPartial& part : partials[i]) {
      qs.tuples_scanned += part.scanned;
      qs.cpu_ops += part.cpu;
      qs.cpu_ops_parallel += part.cpu;
    }
    qs.shared_scans = 1;
    qs.shared_scan_queries = n;

    auto run_tail = [&]() -> Result<QueryResult> {
      APUAMA_ASSIGN_OR_RETURN(
          GroupMap groups,
          MergeMorselPartials(pool, &partials[i], agg_nodes[i], &qs));
      if (groups.empty() && stmts[i]->group_by.empty()) {
        AggGroup g;
        g.repr = Row(headers[i].columns.size(), Value::Null());
        g.accs.resize(agg_nodes[i].size());
        groups.emplace(Row{}, std::move(g));
      }
      return FinalizeGroups(&execs[i], &qs, *stmts[i], headers[i], &groups,
                            agg_nodes[i], nullptr);
    };
    Result<QueryResult> r = run_tail();
    if (r.ok()) {
      r->stats = qs;
      r->stats.tuples_output = r->rows.size();
      qs.tuples_output = r->rows.size();
    }
    results.push_back(std::move(r));
  }

  // Batch accounting: the physical work actually performed. Pages and
  // the scan itself happened once; every query's evaluation and merge
  // cpu happened for real.
  batch_stats->morsels += morsels.size();
  batch_stats->tuples_scanned += rows_scanned_once;
  if (static_cast<uint32_t>(threads) > batch_stats->exec_threads) {
    batch_stats->exec_threads = static_cast<uint32_t>(threads);
  }
  for (size_t i = 0; i < n; ++i) {
    batch_stats->cpu_ops += qstats[i].cpu_ops;
    batch_stats->cpu_ops_parallel += qstats[i].cpu_ops_parallel;
    batch_stats->tuples_output += qstats[i].tuples_output;
    batch_stats->used_seq_scan =
        batch_stats->used_seq_scan || qstats[i].used_seq_scan;
    batch_stats->used_index_scan =
        batch_stats->used_index_scan || qstats[i].used_index_scan;
  }
  batch_stats->shared_scans += 1;
  batch_stats->shared_scan_queries += n;
  return results;
}

// ---------------------------------------------------------------------------
// Morsel-parallel partitioned hash joins
// ---------------------------------------------------------------------------

bool Executor::MorselJoinEligible(const SelectStmt& stmt,
                                  const EvalScope* outer) const {
  if (outer != nullptr) return false;  // correlated context
  if (!db_->settings()->enable_morsel_exec) return false;
  if (!db_->settings()->enable_join_parallel) return false;
  if (stmt.from.size() < 2) return false;  // single table: MorselEligible
  for (const auto& item : stmt.items) {
    if (item.star) return false;
  }
  // Morsel workers run without an executor, so any subquery anywhere
  // in the statement forces the sequential pipeline.
  return !StmtHasSubquery(stmt);
}

Result<std::optional<QueryResult>> Executor::ExecuteMorselJoin(
    const SelectStmt& stmt) {
  // ---- Plan, side-effect free. Every decision below depends only on
  // table contents and the statement text — never on the thread count
  // or the FROM order — and any shape the pipeline cannot run returns
  // nullopt before stats or scan_paths are touched, so the legacy
  // fallback starts from a clean slate.
  std::vector<FromBinding> from;
  std::vector<std::string> binding_names;
  for (const auto& ref : stmt.from) {
    APUAMA_ASSIGN_OR_RETURN(const storage::Table* t,
                            static_cast<const storage::Catalog*>(
                                db_->catalog())
                                ->GetTable(ref.table));
    FromBinding fb;
    fb.binding = ToLower(ref.binding());
    fb.table = t;
    from.push_back(fb);
    binding_names.push_back(fb.binding);
  }

  auto attribute = [&](const Expr& e) -> int {
    if (!e.table_qualifier.empty()) {
      for (size_t i = 0; i < from.size(); ++i) {
        if (EqualsIgnoreCase(from[i].binding, e.table_qualifier)) {
          return static_cast<int>(i);
        }
      }
      return -1;
    }
    int found = -1;
    for (size_t i = 0; i < from.size(); ++i) {
      if (from[i].table->schema().FindColumn(e.column_name) >= 0) {
        if (found >= 0) return found;  // ambiguous: first wins for
                                       // placement; eval will error
        found = static_cast<int>(i);
      }
    }
    return found;
  };
  auto binding_index = [&](const std::string& b) -> size_t {
    for (size_t i = 0; i < from.size(); ++i) {
      if (from[i].binding == b) return i;
    }
    return 0;  // unreachable: CollectBindings only emits FROM names
  };

  // Classify WHERE conjuncts: single-binding conjuncts become scan
  // predicates, two-binding equalities become join predicates, and
  // everything else is a residual applied at the earliest probe stage
  // that covers all its bindings. Conjunct order is WHERE order
  // throughout, so composite keys and filter order are identical under
  // permuted FROM lists.
  struct JoinPredP {
    const Expr* lhs = nullptr;
    const Expr* rhs = nullptr;
    std::string lb, rb;
    bool applied = false;
  };
  struct ResidualP {
    const Expr* expr = nullptr;
    std::set<std::string> bindings;
  };
  std::vector<std::vector<const Expr*>> scan_preds(from.size());
  std::vector<JoinPredP> join_preds;
  std::vector<ResidualP> residual_conjs;
  for (const Expr* c : sql::SplitConjuncts(stmt.where.get())) {
    std::set<std::string> bindings;
    bool uses_outer = false;
    CollectBindings(*c, db_->catalog(), attribute, &bindings, &uses_outer,
                    binding_names);
    if (uses_outer) return std::optional<QueryResult>();
    if (bindings.size() == 1) {
      scan_preds[binding_index(*bindings.begin())].push_back(c);
      continue;
    }
    if (bindings.size() == 2 && c->kind == ExprKind::kBinary &&
        c->binary_op == BinaryOp::kEq) {
      std::set<std::string> lb, rb;
      bool lo = false, ro = false;
      CollectBindings(*c->children[0], db_->catalog(), attribute, &lb, &lo,
                      binding_names);
      CollectBindings(*c->children[1], db_->catalog(), attribute, &rb, &ro,
                      binding_names);
      if (!lo && !ro && lb.size() == 1 && rb.size() == 1 &&
          *lb.begin() != *rb.begin()) {
        JoinPredP jp;
        jp.lhs = c->children[0].get();
        jp.rhs = c->children[1].get();
        jp.lb = *lb.begin();
        jp.rb = *rb.begin();
        join_preds.push_back(std::move(jp));
        continue;
      }
    }
    residual_conjs.push_back(ResidualP{c, std::move(bindings)});
  }

  // Driver = probe side of the whole chain: the largest raw table
  // (ties broken by binding name), so the biggest scan is the one that
  // streams through morsels instead of being materialized into hash
  // tables.
  size_t driver = 0;
  for (size_t i = 1; i < from.size(); ++i) {
    const size_t a = from[i].table->num_rows();
    const size_t b = from[driver].table->num_rows();
    if (a > b || (a == b && from[i].binding < from[driver].binding)) {
      driver = i;
    }
  }

  // Chain order: repeatedly add the smallest raw table connected to
  // the covered set by an equality predicate (ties by binding name).
  // Raw sizes make the order independent of scan selectivity and of
  // the FROM permutation; a disconnected table means a cross join,
  // which stays on the legacy path.
  struct BuildStage {
    size_t from_idx = 0;
    std::vector<const Expr*> probe_keys;  // over already-covered bindings
    std::vector<const Expr*> build_keys;  // over the stage's own binding
    std::vector<const Expr*> residuals;   // conjuncts first covered here
  };
  std::vector<BuildStage> stages;
  std::set<std::string> covered = {from[driver].binding};
  std::vector<bool> merged(from.size(), false);
  merged[driver] = true;
  // Coverage step per FROM index: 0 = driver, k + 1 = after stage k.
  std::vector<size_t> coverage_order(from.size(), 0);
  while (stages.size() + 1 < from.size()) {
    size_t best = from.size();
    for (size_t i = 0; i < from.size(); ++i) {
      if (merged[i]) continue;
      bool connected = false;
      for (const auto& jp : join_preds) {
        if (jp.applied) continue;
        if ((covered.count(jp.lb) && jp.rb == from[i].binding) ||
            (covered.count(jp.rb) && jp.lb == from[i].binding)) {
          connected = true;
          break;
        }
      }
      if (!connected) continue;
      if (best == from.size() ||
          from[i].table->num_rows() < from[best].table->num_rows() ||
          (from[i].table->num_rows() == from[best].table->num_rows() &&
           from[i].binding < from[best].binding)) {
        best = i;
      }
    }
    if (best == from.size()) {
      return std::optional<QueryResult>();  // cross join: legacy path
    }
    BuildStage st;
    st.from_idx = best;
    const std::string& b = from[best].binding;
    for (auto& jp : join_preds) {
      if (jp.applied) continue;
      if (covered.count(jp.lb) && jp.rb == b) {
        st.probe_keys.push_back(jp.lhs);
        st.build_keys.push_back(jp.rhs);
        jp.applied = true;
      } else if (covered.count(jp.rb) && jp.lb == b) {
        st.probe_keys.push_back(jp.rhs);
        st.build_keys.push_back(jp.lhs);
        jp.applied = true;
      }
    }
    covered.insert(b);
    merged[best] = true;
    coverage_order[best] = stages.size() + 1;
    stages.push_back(std::move(st));
  }
  for (const auto& jp : join_preds) {
    // Defensive: every pred connects two FROM bindings and both end up
    // covered, so the chain loop must have consumed it.
    if (!jp.applied) return std::optional<QueryResult>();
  }
  for (const ResidualP& rc : residual_conjs) {
    size_t latest = 0;
    for (const auto& rb : rc.bindings) {
      latest = std::max(latest, coverage_order[binding_index(rb)]);
    }
    if (latest == 0) {
      // Constant (or driver-only shaped): evaluate per driver row.
      scan_preds[driver].push_back(rc.expr);
    } else {
      stages[latest - 1].residuals.push_back(rc.expr);
    }
  }

  // Output layouts after each probe stage: driver columns, then each
  // build table's columns in chain order. Stage k's probe keys
  // evaluate against layouts[k]; its residuals see layouts[k + 1].
  std::vector<Relation> layouts(stages.size() + 1);
  auto append_cols = [](Relation* rel, const FromBinding& fb) {
    for (const auto& col : fb.table->schema().columns()) {
      rel->columns.push_back(ColumnBinding{fb.binding, col.name});
    }
  };
  append_cols(&layouts[0], from[driver]);
  for (size_t k = 0; k < stages.size(); ++k) {
    layouts[k + 1].columns = layouts[k].columns;
    append_cols(&layouts[k + 1], from[stages[k].from_idx]);
  }

  std::vector<const Expr*> agg_nodes = CollectAggInventory(stmt);

  // ---- Plan committed; stats mutations start here. Spans cover the
  // pipeline phases only (coordinator thread) so trace shape does not
  // depend on worker scheduling.
  obs::Span join_span =
      obs::Tracer::Global().StartSpan("morsel.join", "morsel");
  if (join_span.active()) {
    join_span.AddAttr("stages", static_cast<int64_t>(stages.size()));
  }
  int want = db_->settings()->exec_threads;
  if (want < 1) want = 1;
  ThreadPool* pool = want > 1 ? db_->exec_pool() : nullptr;
  auto note_threads = [&](size_t items) {
    const size_t th =
        items == 0 ? 1 : std::min<size_t>(static_cast<size_t>(want), items);
    if (th > stats_->exec_threads) {
      stats_->exec_threads = static_cast<uint32_t>(th);
    }
  };
  const bool use_filter = db_->settings()->enable_join_filter;

  // ---- Parallel partitioned builds, one stage at a time. Each build
  // side is scanned in morsels (filtering + key evaluation fan out),
  // then the hash partitions are assembled concurrently — each in
  // morsel-index order, so hash-table iteration order, and therefore
  // every downstream value, is identical at every thread count.
  struct BuiltStage {
    std::array<std::vector<Row>, kMergePartitions> rows;
    std::array<std::unordered_multimap<Row, size_t, RowHash, RowEq>,
               kMergePartitions>
        ht;
    std::array<KeyFilter, kMergePartitions> filters;
  };
  std::vector<BuiltStage> built(stages.size());
  obs::Span build_span =
      obs::Tracer::Global().StartSpan("morsel.build", "morsel");
  for (size_t s = 0; s < stages.size(); ++s) {
    const FromBinding& fb = from[stages[s].from_idx];
    const storage::Table& t = *fb.table;
    const std::vector<const Expr*>& preds = scan_preds[stages[s].from_idx];
    APUAMA_ASSIGN_OR_RETURN(ScanPlan plan, PlanScan(fb, preds, nullptr));
    ScanMorsels sm = TouchAndMorselize(t, plan);
    stats_->morsels += sm.morsels.size();
    note_threads(sm.morsels.size());

    Relation bheader;
    bheader.columns.reserve(t.schema().num_columns());
    for (const auto& col : t.schema().columns()) {
      bheader.columns.push_back(ColumnBinding{fb.binding, col.name});
    }

    // The key hash is computed once per build row and reused for the
    // partition choice, the semi-join filter bits, and the insert.
    struct Keyed {
      size_t hash = 0;
      Row key;
      Row row;
    };
    struct BuildChunk {
      std::array<std::vector<Keyed>, kMergePartitions> keyed;
      uint64_t cpu = 0;
      uint64_t scanned = 0;
    };
    std::vector<BuildChunk> chunks(sm.morsels.size());
    const std::vector<const Expr*>& build_keys = stages[s].build_keys;
    auto scan_morsel = [&](size_t mi) -> Status {
      BuildChunk& ch = chunks[mi];
      ColumnResolver resolver(&bheader);
      EvalScope scope{&resolver, nullptr, nullptr};
      EvalContext ctx;
      ctx.scope = &scope;
      ctx.executor = nullptr;  // eligibility guaranteed no subqueries
      ctx.cpu_ops = &ch.cpu;
      for (size_t j = sm.morsels[mi].begin; j < sm.morsels[mi].end; ++j) {
        const size_t pos = sm.by_position_list ? plan.index_positions[j] : j;
        const Row& r = t.row(pos);
        ++ch.scanned;
        scope.row = &r;
        bool keep = true;
        for (const Expr* p : preds) {
          APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*p, ctx));
          if (Truthiness(v) != 1) {
            keep = false;
            break;
          }
        }
        if (!keep) continue;
        Row key;
        key.reserve(build_keys.size());
        bool null_key = false;
        for (const Expr* k : build_keys) {
          APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*k, ctx));
          if (v.is_null()) null_key = true;
          key.push_back(std::move(v));
        }
        if (null_key) continue;  // inner join: null keys never match
        Keyed kd;
        kd.hash = RowHash{}(key);
        kd.key = std::move(key);
        kd.row = r;
        ch.keyed[kd.hash % kMergePartitions].push_back(std::move(kd));
      }
      return Status::OK();
    };
    APUAMA_RETURN_NOT_OK(
        ParallelFor(pool, 0, sm.morsels.size(), scan_morsel));

    BuiltStage& bs = built[s];
    std::array<uint64_t, kMergePartitions> part_cpu{};
    auto build_partition = [&](size_t p) -> Status {
      size_t n = 0;
      for (const BuildChunk& ch : chunks) n += ch.keyed[p].size();
      bs.rows[p].reserve(n);
      bs.ht[p].reserve(n);
      for (BuildChunk& ch : chunks) {
        for (Keyed& kd : ch.keyed[p]) {
          ++part_cpu[p];
          bs.filters[p].Add(kd.hash);
          bs.rows[p].push_back(std::move(kd.row));
          bs.ht[p].emplace(std::move(kd.key), bs.rows[p].size() - 1);
        }
      }
      return Status::OK();
    };
    APUAMA_RETURN_NOT_OK(
        ParallelFor(pool, 0, kMergePartitions, build_partition));

    for (const BuildChunk& ch : chunks) {
      stats_->tuples_scanned += ch.scanned;
      stats_->cpu_ops += ch.cpu;
      stats_->cpu_ops_parallel += ch.cpu;
    }
    for (size_t p = 0; p < kMergePartitions; ++p) {
      stats_->cpu_ops += part_cpu[p];
      stats_->cpu_ops_parallel += part_cpu[p];
      stats_->join_build_rows += bs.rows[p].size();
    }
  }
  build_span.End();

  // ---- Morsel-driven probe: driver rows stream through the full
  // probe chain (filter -> probe -> residuals -> next stage -> partial
  // aggregate) without materializing intermediate relations.
  const FromBinding& dfb = from[driver];
  const storage::Table& dt = *dfb.table;
  const std::vector<const Expr*>& dpreds = scan_preds[driver];
  APUAMA_ASSIGN_OR_RETURN(ScanPlan dplan, PlanScan(dfb, dpreds, nullptr));
  ScanMorsels dsm = TouchAndMorselize(dt, dplan);
  stats_->morsels += dsm.morsels.size();
  note_threads(dsm.morsels.size());

  // ---- Columnar driver compile (vectorized probe). The chunk lookup
  // and all compilation happen here on the coordinator — the column
  // store is not thread-safe — before morsels fan out. Per-conjunct:
  // a scan predicate that does not compile keeps its row-wise form
  // over the selection vector; if neither a predicate nor the
  // stage-0 key set vectorizes, the driver loop below stays on the
  // legacy row path byte for byte (as it does whenever `SET
  // columnar_join` or `SET columnar_exec` is off, or the driver scan
  // is an index-order position list).
  struct DriverPredStep {
    std::unique_ptr<VecPredicate> vec;
    const Expr* row = nullptr;
  };
  // One stage-0 probe-key lane: a compiled numeric kernel, or a
  // dictionary-coded string column hashed through per-code string
  // hashes (precomputed once per dictionary entry).
  struct KeyLane {
    std::unique_ptr<VecExpr> vec;
    const storage::ColumnVector* dict_col = nullptr;
    std::vector<size_t> code_hash;
  };
  std::vector<DriverPredStep> dsteps;
  std::vector<KeyLane> key_lanes;
  bool keys_vec = false;
  bool driver_columnar = false;
  const storage::ColumnarTable* dchunk = nullptr;
  if (db_->settings()->enable_columnar_exec &&
      db_->settings()->enable_columnar_join && !dsm.by_position_list) {
    storage::ColumnStore::GetResult cg = db_->column_store()->Get(dt);
    dchunk = cg.chunk;
    bool any_vec = false;
    for (const Expr* p : dpreds) {
      DriverPredStep step;
      step.vec = CompileVecPredicate(*p, layouts[0], *dchunk);
      if (step.vec != nullptr) {
        any_vec = true;
      } else {
        step.row = p;
      }
      dsteps.push_back(std::move(step));
    }
    if (!stages.empty()) {
      keys_vec = true;
      for (const Expr* e : stages[0].probe_keys) {
        KeyLane lane;
        lane.vec = CompileVecExpr(*e, layouts[0], *dchunk);
        if (lane.vec == nullptr && e->kind == ExprKind::kColumnRef) {
          const int slot =
              layouts[0].FindSlot(e->table_qualifier, e->column_name);
          if (slot >= 0 &&
              static_cast<size_t>(slot) < dchunk->cols.size() &&
              dchunk->cols[static_cast<size_t>(slot)].dict_encoded) {
            lane.dict_col = &dchunk->cols[static_cast<size_t>(slot)];
            lane.code_hash.reserve(lane.dict_col->dict.size());
            for (const std::string& s : lane.dict_col->dict) {
              // Value::Hash of the kString the row path would box.
              lane.code_hash.push_back(std::hash<std::string>()(s));
            }
          }
        }
        if (lane.vec == nullptr && lane.dict_col == nullptr) {
          keys_vec = false;
          break;
        }
        key_lanes.push_back(std::move(lane));
      }
      if (!keys_vec) key_lanes.clear();
      if (keys_vec) any_vec = true;
    }
    driver_columnar = any_vec;
    if (driver_columnar) {
      if (cg.built) ++stats_->columnar_chunks_built;
      if (cg.rebuilt) ++stats_->columnar_chunk_rebuilds;
    } else {
      dsteps.clear();
    }
  }

  std::vector<MorselPartial> partials(dsm.morsels.size());
  auto probe_morsel = [&](size_t mi) -> Status {
    MorselPartial& part = partials[mi];
    // The scratch row holds the chain's current tuple; its address is
    // stable, so every per-layout scope can point at it up front.
    Row scratch;
    std::vector<ColumnResolver> resolvers;
    resolvers.reserve(layouts.size());
    for (const Relation& l : layouts) resolvers.emplace_back(&l);
    std::vector<EvalScope> scopes(layouts.size());
    std::vector<EvalContext> ctxs(layouts.size());
    for (size_t k = 0; k < layouts.size(); ++k) {
      scopes[k].resolver = &resolvers[k];
      scopes[k].row = &scratch;
      ctxs[k].scope = &scopes[k];
      ctxs[k].executor = nullptr;  // eligibility guaranteed no subqueries
      ctxs[k].cpu_ops = &part.cpu;
    }

    // The chain is split in two so the vectorized driver can enter it
    // past the per-row key/hash/filter work it already did in slices:
    // `descend(k)` evaluates stage k's probe key row-wise, hashes it
    // and consults the partition filter; `probe_chain(k, key, h)`
    // walks the hash chain, applies residuals and recurses. The row
    // driver always goes through descend; both meet at probe_chain,
    // so match processing is one code path.
    std::function<Status(size_t)> descend;
    auto probe_chain = [&](size_t k, const Row& key, size_t h) -> Status {
      const BuildStage& st = stages[k];
      const BuiltStage& bs = built[k];
      const size_t p = h % kMergePartitions;
      const size_t base = scratch.size();
      auto [lo, hi] = bs.ht[p].equal_range(key);
      for (auto it = lo; it != hi; ++it) {
        ++part.cpu;
        const Row& brow = bs.rows[p][it->second];
        scratch.insert(scratch.end(), brow.begin(), brow.end());
        bool pass = true;
        for (const Expr* res : st.residuals) {
          APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*res, ctxs[k + 1]));
          if (Truthiness(v) != 1) {
            pass = false;
            break;
          }
        }
        Status status = pass ? descend(k + 1) : Status::OK();
        scratch.resize(base);
        APUAMA_RETURN_NOT_OK(status);
      }
      return Status::OK();
    };
    descend = [&](size_t k) -> Status {
      if (k == stages.size()) {
        return AccumulateRow(stmt, agg_nodes, ctxs[k], scratch, &part);
      }
      const BuildStage& st = stages[k];
      const BuiltStage& bs = built[k];
      Row key;
      key.reserve(st.probe_keys.size());
      bool null_key = false;
      for (const Expr* e : st.probe_keys) {
        APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*e, ctxs[k]));
        if (v.is_null()) null_key = true;
        key.push_back(std::move(v));
      }
      if (null_key) return Status::OK();  // inner join semantics
      const size_t h = RowHash{}(key);
      const size_t p = h % kMergePartitions;
      if (use_filter && !bs.filters[p].MayContain(h)) {
        ++part.filter_skipped;
        return Status::OK();
      }
      ++part.probed;
      return probe_chain(k, key, h);
    };

    if (driver_columnar) {
      // Vectorized driver: dense selection over the morsel, then
      // per-conjunct filtering (compiled kernels shrink the selection
      // in slices; uncompiled conjuncts run row-wise over whatever
      // survives), then the stage-0 keys load column-major, hash in
      // slices and pass the partition filter as a kernel. Only the
      // survivors materialize the scratch row and probe the chain.
      const size_t begin = dsm.morsels[mi].begin;
      const size_t end = dsm.morsels[mi].end;
      std::vector<uint32_t> sel;
      sel.reserve(end - begin);
      for (size_t j = begin; j < end; ++j) {
        sel.push_back(static_cast<uint32_t>(j));
      }
      part.scanned += sel.size();
      for (const DriverPredStep& step : dsteps) {
        if (sel.empty()) break;
        if (step.vec != nullptr) {
          APUAMA_RETURN_NOT_OK(FilterVec(*step.vec, *dchunk, &sel,
                                         &part.cpu, &part.vec_rows,
                                         &part.dict_hits));
          continue;
        }
        // Row-wise fallback for this conjunct only: evaluate against
        // the heap row in place (layout 0 is the driver's schema).
        std::vector<uint32_t> out;
        out.reserve(sel.size());
        for (const uint32_t pos : sel) {
          scopes[0].row = &dt.row(pos);
          APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*step.row, ctxs[0]));
          if (Truthiness(v) == 1) out.push_back(pos);
        }
        sel.swap(out);
      }
      scopes[0].row = &scratch;  // probe chain reads the scratch row
      if (sel.empty()) return Status::OK();
      if (!keys_vec) {
        for (const uint32_t pos : sel) {
          const Row& r = dt.row(pos);
          scratch.assign(r.begin(), r.end());
          APUAMA_RETURN_NOT_OK(descend(0));
        }
        return Status::OK();
      }
      const size_t n = sel.size();
      std::vector<VecData> lanes(key_lanes.size());
      for (size_t i = 0; i < key_lanes.size(); ++i) {
        if (key_lanes[i].vec != nullptr) {
          APUAMA_RETURN_NOT_OK(EvalVec(*key_lanes[i].vec, *dchunk, sel,
                                       &lanes[i], &part.cpu,
                                       &part.vec_rows));
        }
      }
      // Hash pass: seed, then one combine per key lane — the exact
      // fold RowHash applies to the boxed key row (Value::Hash of an
      // int/date lane is std::hash<int64_t>, a double lane hashes its
      // integral twin when it has one, a dictionary code looks up the
      // precomputed string hash), so partition choice and filter
      // membership are bit-identical to the row path. A NULL in any
      // key lane can never match an inner join: mark and skip.
      std::vector<size_t> hashes(n, size_t{0x9e3779b9});
      std::vector<uint8_t> null_key(n, 0);
      for (size_t i = 0; i < key_lanes.size(); ++i) {
        part.cpu += VecOps(n);
        const KeyLane& kl = key_lanes[i];
        if (kl.dict_col != nullptr) {
          part.dict_hits += n;
          for (size_t k = 0; k < n; ++k) {
            const uint32_t pos = sel[k];
            if (kl.dict_col->IsNull(pos)) {
              null_key[k] = 1;
              continue;
            }
            hashes[k] =
                hashes[k] * 1315423911u +
                kl.code_hash[static_cast<size_t>(kl.dict_col->codes[pos])];
          }
        } else {
          const VecData& vd = lanes[i];
          for (size_t k = 0; k < n; ++k) {
            if (vd.IsNull(k)) {
              null_key[k] = 1;
              continue;
            }
            size_t vh;
            if (vd.type == ValueType::kDouble) {
              const double d = vd.f64[k];
              vh = d == static_cast<double>(static_cast<int64_t>(d))
                       ? std::hash<int64_t>()(static_cast<int64_t>(d))
                       : std::hash<double>()(d);
            } else {
              vh = std::hash<int64_t>()(vd.i64[k]);
            }
            hashes[k] = hashes[k] * 1315423911u + vh;
          }
        }
      }
      // Filter slice kernel: partition + semi-join filter membership
      // decide which rows materialize at all.
      part.cpu += VecOps(n);
      part.probe_vec += n;
      const BuiltStage& bs0 = built[0];
      for (size_t k = 0; k < n; ++k) {
        if (null_key[k]) continue;  // inner join semantics
        const size_t h = hashes[k];
        if (use_filter && !bs0.filters[h % kMergePartitions].MayContain(h)) {
          ++part.filter_skipped;
          continue;
        }
        ++part.probed;
        const uint32_t pos = sel[k];
        const Row& r = dt.row(pos);
        scratch.assign(r.begin(), r.end());
        // Box the key back into the row path's value model only for
        // rows that actually reach a hash chain.
        Row key;
        key.reserve(key_lanes.size());
        for (size_t i = 0; i < key_lanes.size(); ++i) {
          const KeyLane& kl = key_lanes[i];
          key.push_back(
              kl.dict_col != nullptr
                  ? Value::Str(kl.dict_col->dict[static_cast<size_t>(
                        kl.dict_col->codes[pos])])
                  : lanes[i].ValueAt(k));
        }
        APUAMA_RETURN_NOT_OK(probe_chain(0, key, h));
      }
      return Status::OK();
    }

    for (size_t j = dsm.morsels[mi].begin; j < dsm.morsels[mi].end; ++j) {
      const size_t pos = dsm.by_position_list ? dplan.index_positions[j] : j;
      const Row& r = dt.row(pos);
      ++part.scanned;
      scratch.assign(r.begin(), r.end());
      bool keep = true;
      for (const Expr* pr : dpreds) {
        APUAMA_ASSIGN_OR_RETURN(Value v, Eval(*pr, ctxs[0]));
        if (Truthiness(v) != 1) {
          keep = false;
          break;
        }
      }
      if (!keep) continue;
      APUAMA_RETURN_NOT_OK(descend(0));
    }
    return Status::OK();
  };
  {
    obs::Span probe_span =
        obs::Tracer::Global().StartSpan("morsel.probe", "morsel");
    APUAMA_RETURN_NOT_OK(
        ParallelFor(pool, 0, dsm.morsels.size(), probe_morsel));
  }

  for (const MorselPartial& part : partials) {
    stats_->tuples_scanned += part.scanned;
    stats_->cpu_ops += part.cpu;
    stats_->cpu_ops_parallel += part.cpu;
    stats_->join_probe_rows += part.probed;
    stats_->filter_skipped_rows += part.filter_skipped;
    stats_->vectorized_rows += part.vec_rows;
    stats_->probe_vectorized_rows += part.probe_vec;
    stats_->dict_hits += part.dict_hits;
  }

  obs::Span join_merge_span =
      obs::Tracer::Global().StartSpan("morsel.merge", "morsel");
  APUAMA_ASSIGN_OR_RETURN(
      GroupMap groups,
      MergeMorselPartials(pool, &partials, agg_nodes, stats_));
  join_merge_span.End();

  // Global aggregate over empty input still yields one group.
  if (groups.empty() && stmt.group_by.empty()) {
    AggGroup g;
    g.repr = Row(layouts.back().columns.size(), Value::Null());
    g.accs.resize(agg_nodes.size());
    groups.emplace(Row{}, std::move(g));
  }

  APUAMA_ASSIGN_OR_RETURN(
      QueryResult qr, FinalizeGroups(this, stats_, stmt, layouts.back(),
                                     &groups, agg_nodes, nullptr));
  return std::optional<QueryResult>(std::move(qr));
}

}  // namespace apuama::engine

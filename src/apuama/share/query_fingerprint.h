// Query fingerprinting — the single source of truth for normalizing
// SQL text into a cache key. Both the plan cache (src/apuama/
// plan_cache.*) and the result cache (src/apuama/share/result_cache.*)
// key on this normalization; keeping it here means they cannot drift.
//
// Normalization is deliberately conservative: whitespace collapses to
// one space and identifiers/keywords lowercase, but literal content
// between quotes is preserved verbatim (including doubled-delimiter
// escapes). Two queries that could produce different results MUST map
// to different fingerprints — a collision is a wrong-results bug for
// the result cache, not just a perf bug.
#ifndef APUAMA_SHARE_QUERY_FINGERPRINT_H_
#define APUAMA_SHARE_QUERY_FINGERPRINT_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>

namespace apuama::share {

/// Normalizes SQL for cache keying: lowercases and collapses runs of
/// whitespace outside quoted literals; literal content (between ' or
/// ") is copied verbatim, honoring doubled-delimiter escapes
/// ('It''s'). Idempotent: NormalizeSql(NormalizeSql(s)) ==
/// NormalizeSql(s).
std::string NormalizeSql(const std::string& sql);

/// Stable 64-bit hash of a normalized fingerprint (FNV-1a). Used for
/// backend affinity routing, never for equality: the full normalized
/// string remains the cache key.
uint64_t FingerprintHash(const std::string& normalized);

/// Tables a SELECT references (including inside subqueries),
/// lowercased to match the write side's epoch keys; nullopt when
/// `sql` is not a plain SELECT — such reads (e.g. EXPLAIN) bypass the
/// result cache and the admission gate entirely.
std::optional<std::set<std::string>> ReadTableSet(const std::string& sql);

/// Target table of a write statement (lowercased), or "" when the
/// statement cannot be attributed to one table — the result cache
/// then bumps its global epoch, invalidating every entry.
std::string WriteTargetTable(const std::string& sql);

}  // namespace apuama::share

#endif  // APUAMA_SHARE_QUERY_FINGERPRINT_H_

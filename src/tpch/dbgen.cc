#include "tpch/dbgen.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"
#include "tpch/schema.h"

namespace apuama::tpch {

namespace {

// TPC-H's 25 nations with their region keys (region 0=AFRICA,
// 1=AMERICA, 2=ASIA, 3=EUROPE, 4=MIDDLE EAST).
struct NationDef {
  const char* name;
  int region;
};
constexpr NationDef kNations[] = {
    {"ALGERIA", 0},    {"ARGENTINA", 1}, {"BRAZIL", 1},
    {"CANADA", 1},     {"EGYPT", 4},     {"ETHIOPIA", 0},
    {"FRANCE", 3},     {"GERMANY", 3},   {"INDIA", 2},
    {"INDONESIA", 2},  {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},      {"JORDAN", 4},    {"KENYA", 0},
    {"MOROCCO", 0},    {"MOZAMBIQUE", 0}, {"PERU", 1},
    {"CHINA", 2},      {"ROMANIA", 3},   {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},    {"RUSSIA", 3},    {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1},
};
constexpr const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                    "MIDDLE EAST"};
constexpr const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                     "MACHINERY", "HOUSEHOLD"};
constexpr const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                       "4-NOT SPECIFIED", "5-LOW"};
constexpr const char* kShipModes[] = {"REG AIR", "AIR",  "RAIL", "SHIP",
                                      "TRUCK",   "MAIL", "FOB"};
constexpr const char* kInstructs[] = {"DELIVER IN PERSON", "COLLECT COD",
                                      "NONE", "TAKE BACK RETURN"};
constexpr const char* kTypes1[] = {"STANDARD", "SMALL",   "MEDIUM",
                                   "LARGE",    "ECONOMY", "PROMO"};
constexpr const char* kTypes2[] = {"ANODIZED", "BURNISHED", "PLATED",
                                   "POLISHED", "BRUSHED"};
constexpr const char* kTypes3[] = {"TIN", "NICKEL", "BRASS", "STEEL",
                                   "COPPER"};
constexpr const char* kContainers[] = {"SM CASE", "MED BOX", "LG DRUM",
                                       "JUMBO JAR", "WRAP BAG"};

}  // namespace

int64_t TpchStartDate() {
  static const int64_t d = DaysFromCivil(1992, 1, 1);
  return d;
}
int64_t TpchEndDate() {
  static const int64_t d = DaysFromCivil(1998, 8, 2);
  return d;
}
int64_t TpchCurrentDate() {
  static const int64_t d = DaysFromCivil(1995, 6, 17);
  return d;
}

TpchData::TpchData(DbgenOptions options) : options_(options) { Generate(); }

const std::vector<Row>& TpchData::table(const std::string& name) const {
  static const std::vector<Row> empty;
  auto it = tables_.find(name);
  return it == tables_.end() ? empty : it->second;
}

void TpchData::Generate() {
  Rng rng(options_.seed);
  const double sf = options_.scale_factor;
  auto scaled = [sf](int64_t base) {
    return std::max<int64_t>(1, static_cast<int64_t>(std::llround(
                                    static_cast<double>(base) * sf)));
  };
  const int64_t n_supp = scaled(10000);
  const int64_t n_cust = scaled(150000);
  const int64_t n_part = scaled(200000);
  num_orders_ = scaled(1500000);

  // region / nation (fixed).
  {
    auto& rows = tables_["region"];
    for (int64_t r = 0; r < 5; ++r) {
      rows.push_back({Value::Int(r), Value::Str(kRegions[r]),
                      Value::Str("region comment")});
    }
  }
  {
    auto& rows = tables_["nation"];
    for (int64_t n = 0; n < 25; ++n) {
      rows.push_back({Value::Int(n), Value::Str(kNations[n].name),
                      Value::Int(kNations[n].region),
                      Value::Str("nation comment")});
    }
  }

  // supplier
  {
    Rng r = rng.Fork();
    auto& rows = tables_["supplier"];
    for (int64_t k = 1; k <= n_supp; ++k) {
      rows.push_back({Value::Int(k),
                      Value::Str(StrFormat("Supplier#%09lld",
                                           static_cast<long long>(k))),
                      Value::Str(r.NextString(12)),
                      Value::Int(r.Uniform(0, 24)),
                      Value::Str(StrFormat("27-%03d-%04d",
                                           static_cast<int>(r.Uniform(100, 999)),
                                           static_cast<int>(r.Uniform(1000, 9999)))),
                      Value::Double(r.UniformDouble(-999.99, 9999.99)),
                      Value::Str("supplier comment")});
    }
  }

  // customer
  {
    Rng r = rng.Fork();
    auto& rows = tables_["customer"];
    for (int64_t k = 1; k <= n_cust; ++k) {
      rows.push_back({Value::Int(k),
                      Value::Str(StrFormat("Customer#%09lld",
                                           static_cast<long long>(k))),
                      Value::Str(r.NextString(12)),
                      Value::Int(r.Uniform(0, 24)),
                      Value::Str(StrFormat("13-%03d-%04d",
                                           static_cast<int>(r.Uniform(100, 999)),
                                           static_cast<int>(r.Uniform(1000, 9999)))),
                      Value::Double(r.UniformDouble(-999.99, 9999.99)),
                      Value::Str(kSegments[r.Uniform(0, 4)]),
                      Value::Str("customer comment")});
    }
  }

  // part
  {
    Rng r = rng.Fork();
    auto& rows = tables_["part"];
    for (int64_t k = 1; k <= n_part; ++k) {
      std::string type = std::string(kTypes1[r.Uniform(0, 5)]) + " " +
                         kTypes2[r.Uniform(0, 4)] + " " +
                         kTypes3[r.Uniform(0, 4)];
      double retail =
          900.0 + static_cast<double>(k % 1000) / 10.0 + 100.0 * (k % 10);
      rows.push_back(
          {Value::Int(k),
           Value::Str(StrFormat("part %lld", static_cast<long long>(k))),
           Value::Str(StrFormat("Manufacturer#%d",
                                static_cast<int>(1 + k % 5))),
           Value::Str(StrFormat("Brand#%d%d", static_cast<int>(1 + k % 5),
                                static_cast<int>(1 + (k / 5) % 5))),
           Value::Str(type), Value::Int(r.Uniform(1, 50)),
           Value::Str(kContainers[r.Uniform(0, 4)]), Value::Double(retail),
           Value::Str("part comment")});
    }
  }

  // partsupp: 4 suppliers per part.
  {
    Rng r = rng.Fork();
    auto& rows = tables_["partsupp"];
    for (int64_t p = 1; p <= n_part; ++p) {
      for (int j = 0; j < 4; ++j) {
        int64_t s = 1 + (p + j * (n_supp / 4 + 1)) % n_supp;
        rows.push_back({Value::Int(p), Value::Int(s),
                        Value::Int(r.Uniform(1, 9999)),
                        Value::Double(r.UniformDouble(1.0, 1000.0)),
                        Value::Str("partsupp comment")});
      }
    }
  }

  // orders + lineitem.
  {
    Rng r = rng.Fork();
    auto& orders = tables_["orders"];
    auto& lines = tables_["lineitem"];
    const int64_t date_span = TpchEndDate() - TpchStartDate() - 151;
    for (int64_t o = 1; o <= num_orders_; ++o) {
      int64_t odate = TpchStartDate() + r.Uniform(0, date_span);
      int nlines = static_cast<int>(r.Uniform(1, 7));
      double total = 0;
      bool all_f = true, all_o = true;
      for (int ln = 1; ln <= nlines; ++ln) {
        int64_t partkey = r.Uniform(1, n_part);
        int64_t suppkey = r.Uniform(1, n_supp);
        double quantity = static_cast<double>(r.Uniform(1, 50));
        double price_base =
            900.0 + static_cast<double>(partkey % 1000) / 10.0 +
            100.0 * (partkey % 10);
        double extended = quantity * price_base / 100.0;
        double discount = static_cast<double>(r.Uniform(0, 10)) / 100.0;
        double tax = static_cast<double>(r.Uniform(0, 8)) / 100.0;
        int64_t shipdate = odate + r.Uniform(1, 121);
        int64_t commitdate = odate + r.Uniform(30, 90);
        int64_t receiptdate = shipdate + r.Uniform(1, 30);
        const char* returnflag =
            receiptdate <= TpchCurrentDate()
                ? (r.Bernoulli(0.5) ? "R" : "A")
                : "N";
        const char* linestatus = shipdate > TpchCurrentDate() ? "O" : "F";
        if (linestatus[0] == 'O') {
          all_f = false;
        } else {
          all_o = false;
        }
        total += extended * (1 + tax) * (1 - discount);
        lines.push_back({Value::Int(o), Value::Int(partkey),
                         Value::Int(suppkey), Value::Int(ln),
                         Value::Double(quantity), Value::Double(extended),
                         Value::Double(discount), Value::Double(tax),
                         Value::Str(returnflag), Value::Str(linestatus),
                         Value::Date(shipdate), Value::Date(commitdate),
                         Value::Date(receiptdate),
                         Value::Str(kInstructs[r.Uniform(0, 3)]),
                         Value::Str(kShipModes[r.Uniform(0, 6)]),
                         Value::Str("line comment")});
      }
      const char* status = all_f ? "F" : (all_o ? "O" : "P");
      orders.push_back(
          {Value::Int(o), Value::Int(r.Uniform(1, n_cust)),
           Value::Str(status), Value::Double(total), Value::Date(odate),
           Value::Str(kPriorities[r.Uniform(0, 4)]),
           Value::Str(StrFormat("Clerk#%09d",
                                static_cast<int>(r.Uniform(1, 1000)))),
           Value::Int(0), Value::Str("order comment")});
    }
  }
}

Status TpchData::LoadInto(engine::Database* db) const {
  APUAMA_RETURN_NOT_OK(CreateSchema(db));
  for (const auto& name : TableNames()) {
    APUAMA_ASSIGN_OR_RETURN(storage::Table * dest,
                            db->catalog()->GetTable(name));
    std::vector<Row> copy = table(name);  // deep copy per replica
    APUAMA_RETURN_NOT_OK(dest->BulkLoad(std::move(copy)));
  }
  return Status::OK();
}

Status TpchData::LoadIntoReplicas(cjdbc::ReplicaSet* replicas) const {
  for (int i = 0; i < replicas->num_nodes(); ++i) {
    APUAMA_RETURN_NOT_OK(LoadInto(replicas->node(i)));
  }
  return Status::OK();
}

}  // namespace apuama::tpch

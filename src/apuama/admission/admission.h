// SLO-driven admission control — the C-JDBC gate's scheduler.
//
// The PR 4 admission window is a rendezvous, not a scheduler: every
// read passes, FIFO, and under overload queueing delay grows without
// bound. This controller replaces that pass-through with a real
// policy: every read arrives with a deadline (SLO) and a priority
// class, the gate estimates the queueing delay it would suffer from
// recent service times (EWMA) and the current backlog, and applies a
// three-stage overload ladder:
//
//   stage 1  widen the scan-share admission window so more queries
//            coalesce into shared batches (capacity grows, nothing
//            is turned away);
//   stage 2  degrade eligible plain SELECTs to APPROX — shedding
//            precision instead of queries (the PR 9 tier answers
//            from a scramble at a fraction of the exact cost), with
//            the result tagged `degraded`;
//   stage 3  shed lowest-priority queries with a typed retryable
//            Status (kOverloaded) — higher priorities tolerate
//            proportionally more predicted overload before shedding,
//            and a full bounded queue sheds unconditionally.
//
// Per-class p99 latency is tracked in PR 5 fixed-bucket histograms
// (owned per controller instance, so decisions are deterministic and
// never bleed across sims/tests) and feeds back into the overload
// estimate once enough observations exist.
//
// Virtual-time contract: the controller NEVER reads a clock — every
// entry point takes `now_us`. The threaded C-JDBC controller passes
// steady-clock time; the discrete-event ClusterSim passes virtual
// time, making a run a pure function of arrival order and the seed.
// Release callbacks fire synchronously inside Submit (fast path) or
// inside a later OnComplete, on the completing caller's context.
#ifndef APUAMA_APUAMA_ADMISSION_ADMISSION_H_
#define APUAMA_APUAMA_ADMISSION_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace apuama::admission {

class AdmissionController {
 public:
  struct Options {
    /// Master switch. Off = Submit admits everything untouched (the
    /// byte-for-byte baseline; callers should bypass Submit entirely
    /// on the hot path when disabled).
    bool enabled = false;
    /// Deadline/priority defaults for requests that carry neither
    /// their own values nor a tenant class.
    int64_t default_slo_us = 50'000;
    int default_priority = 4;  // 0 = shed first .. 7 = shed last
    /// Concurrent dispatched requests the gate allows before queueing
    /// (≈ what the backends can absorb: nodes × multiprogramming).
    int max_inflight = 8;
    /// Waiting requests beyond this are shed regardless of priority —
    /// the bounded admission queue.
    int queue_limit = 256;
    /// Scan-share window ladder (stage 1): base when healthy, widened
    /// proportionally to predicted overload, capped at max.
    int64_t window_base_us = 200;
    int64_t window_max_us = 2'000;
    /// Ladder stages 2/3 on/off (tests isolate one stage at a time).
    bool allow_degrade = true;
    bool allow_shed = true;
    /// Predicted-latency / SLO ratio at which eligible SELECTs start
    /// degrading to APPROX.
    double degrade_at = 1.0;
    /// Ratio at which priority-0 requests shed; priority p sheds at
    /// shed_at * (p + 1), so the lowest classes go first.
    double shed_at = 2.0;
    /// Seed for the service-time EWMA before any completion lands.
    int64_t ewma_seed_us = 1'000;
    /// Histogram observations per class before observed p99 joins the
    /// overload estimate (too few and one slow query stampedes).
    uint64_t p99_min_count = 64;
    /// Completions per class histogram epoch. Fixed-bucket histograms
    /// never decay, so each class rotates to a fresh histogram every
    /// epoch (keeping the previous one for reads while the new one
    /// warms). Without this a cold-start or past-burst tail pins the
    /// observed p99 above the SLO forever and the ladder never climbs
    /// back down. Count-based rotation keeps the controller
    /// clock-free and deterministic under the sim.
    uint64_t p99_epoch = 256;
  };

  /// What the ladder decided for one request.
  enum class Action { kAdmit, kDegrade, kShed };

  struct Request {
    int priority = -1;    // -1 = tenant-class / controller default
    int64_t slo_us = 0;   // 0 = tenant-class / controller default
    /// Eligible for stage 2 (a plain SELECT, not already APPROX).
    bool degradable = false;
    std::string tenant;   // "" = the default class
  };

  /// The resolved outcome handed to the release callback. Carries
  /// everything OnComplete needs, so callers just thread it through.
  struct Ticket {
    uint64_t id = 0;
    Action action = Action::kAdmit;
    int64_t arrive_us = 0;
    int64_t dispatch_us = 0;
    int64_t slo_us = 0;
    int priority = 0;
    /// Stage-1 window at dispatch time (what the scan-share gate
    /// should hold open for this request's batch).
    int64_t window_us = 0;
    std::string tenant;

    int64_t queue_wait_us() const { return dispatch_us - arrive_us; }
    bool degraded() const { return action == Action::kDegrade; }
    bool shed() const { return action == Action::kShed; }
  };

  /// Fires exactly once per Submit: synchronously (immediate admit or
  /// shed) or later from inside another request's OnComplete (the
  /// request waited in the bounded queue).
  using ReleaseFn = std::function<void(const Ticket&)>;

  /// Monotonic counters (all since construction).
  struct Counters {
    uint64_t submitted = 0;
    uint64_t admitted = 0;    // dispatched exact
    uint64_t degraded = 0;    // dispatched as APPROX (stage 2)
    uint64_t shed = 0;        // rejected at arrival (stage 3)
    uint64_t cancelled = 0;   // shed at release: queue wait ate the SLO
    uint64_t queued = 0;      // went through the bounded queue
    uint64_t slo_met = 0;
    uint64_t slo_missed = 0;
  };

  explicit AdmissionController(Options options);

  /// Registers (or overwrites) a tenant class: requests naming
  /// `tenant` inherit these defaults when they carry none.
  void SetTenantClass(const std::string& tenant, int64_t slo_us,
                      int priority);

  /// Runs the ladder for one arrival. The callback always fires
  /// exactly once; inspect Ticket::action for the verdict. When the
  /// controller is disabled the request admits immediately with the
  /// base window.
  void Submit(const Request& request, int64_t now_us, ReleaseFn on_release);

  /// Completion of a dispatched (admitted/degraded) ticket: updates
  /// the EWMA service time, the per-class latency histogram, goodput
  /// counters, and releases queued requests — their callbacks run
  /// inside this call, on this thread.
  void OnComplete(const Ticket& ticket, int64_t now_us, bool ok);

  // --- Knobs (SET broadcast interception / sim options). -------------
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_default_slo_us(int64_t v);
  void set_default_priority(int v);
  void set_queue_limit(int v);

  // --- Introspection. ------------------------------------------------
  /// Current stage-1 window from the latest overload estimate.
  int64_t window_us() const {
    return window_us_.load(std::memory_order_relaxed);
  }
  Counters counters() const;
  /// Requests dispatched but not completed / waiting in the queue.
  int inflight() const;
  int queued() const;
  /// Smoothed service time driving the queueing-delay estimate.
  int64_t ewma_service_us() const;
  /// Observed p99 latency of a class (0 when unseen). PR 5 histogram.
  int64_t ClassP99Us(const std::string& tenant) const;
  /// Ordered counters for a metrics-registry provider.
  std::vector<std::pair<std::string, uint64_t>> Kv() const;

 private:
  struct Waiter {
    Request request;
    int64_t arrive_us = 0;
    uint64_t id = 0;
    int priority = 0;
    int64_t slo_us = 0;
    ReleaseFn on_release;
  };

  struct ClassTrack {
    int64_t slo_us = 0;
    int priority = 0;
    bool has_defaults = false;
    /// Current epoch's latencies; rotated into `prev_latency` every
    /// p99_epoch completions so the p99 signal ages out.
    std::unique_ptr<obs::Histogram> latency;
    std::unique_ptr<obs::Histogram> prev_latency;
  };

  // All Locked methods require mu_.
  ClassTrack& TrackLocked(const std::string& tenant);
  void ResolveLocked(const Request& request, int* priority,
                     int64_t* slo_us);
  /// Predicted latency / SLO for a request arriving now, from the
  /// EWMA backlog model and (when warm) the class's observed p99.
  double OverloadLocked(const std::string& tenant, int64_t slo_us) const;
  /// Stage-1 window for a given overload ratio; also stores it.
  int64_t LadderWindowLocked(double overload);
  /// Observed p99 of the warmest readable epoch (current if past
  /// p99_min_count, else the previous full epoch); 0 = not warm.
  int64_t ClassP99Locked(const ClassTrack& track) const;
  Ticket MakeTicketLocked(const Waiter& w, Action action,
                          int64_t now_us);
  /// Pops releasable waiters while capacity allows. Returns the
  /// (ticket, callback) pairs to fire AFTER dropping mu_.
  std::vector<std::pair<Ticket, ReleaseFn>> DrainQueueLocked(
      int64_t now_us);

  const Options options_;
  std::atomic<bool> enabled_;
  std::atomic<int64_t> window_us_;

  mutable std::mutex mu_;
  int64_t default_slo_us_;
  int default_priority_;
  int queue_limit_;
  int64_t ewma_us_;
  int inflight_ = 0;
  uint64_t next_id_ = 1;
  /// Bounded admission queue, highest priority first, FIFO within a
  /// priority (std::map iterates ascending; we drain from rbegin).
  std::map<int, std::deque<Waiter>> queue_;
  int queued_ = 0;
  std::map<std::string, ClassTrack> classes_;
  std::unique_ptr<obs::Histogram> queue_wait_hist_;
  Counters counters_;
};

}  // namespace apuama::admission

#endif  // APUAMA_APUAMA_ADMISSION_ADMISSION_H_

// Metrics registry — the observability subsystem's second pillar.
//
// One process-wide `Registry` owns every counter, gauge, and
// histogram by name. Hot-path updates are a single relaxed atomic op
// (histograms: one atomic per fixed bucket — no allocation, no lock);
// the mutex only guards instrument *creation* and export. Components
// that keep their own stat structs (`ExecStats`, `ApuamaStats`,
// `ControllerStats`) register a provider callback instead of
// duplicating counters, so TextDump()/JsonDump() is the one place all
// numbers surface.
#ifndef APUAMA_OBS_METRICS_H_
#define APUAMA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace apuama::obs {

/// Renders ordered key/value stats as the classic one-line
/// "k1=v1 k2=v2 ..." form. The stat structs' ToString() methods all
/// route through this so the text shape lives in exactly one place.
std::string RenderKvText(
    const std::vector<std::pair<std::string, uint64_t>>& kv);
/// Same pairs as one flat JSON object ({"k1":v1,...}).
std::string RenderKvJson(
    const std::vector<std::pair<std::string, uint64_t>>& kv);

/// Monotonically increasing count.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time signed value (queue depths, open windows).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram. Bucket bounds are chosen at creation; an
/// observation lands in the first bucket whose upper bound is >= the
/// value (the last bucket is an implicit +inf overflow). Percentile()
/// answers with the upper bound of the bucket holding that rank —
/// exact whenever observed values coincide with bucket bounds, and
/// never worse than one bucket's width otherwise.
class Histogram {
 public:
  explicit Histogram(std::vector<int64_t> bounds);

  void Observe(int64_t value);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Upper bound of the bucket containing the p-th percentile
  /// (0 < p <= 100). Returns 0 on an empty histogram; the overflow
  /// bucket reports the max observed value.
  int64_t Percentile(double p) const;
  void Reset();

  const std::vector<int64_t>& bounds() const { return bounds_; }
  /// Latency-shaped default: 1us .. ~100s in 1-2-5 steps.
  static std::vector<int64_t> DefaultLatencyBoundsUs();

 private:
  const std::vector<int64_t> bounds_;
  // buckets_[i] counts values <= bounds_[i]; buckets_.back() is the
  // overflow bucket.
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

class Registry {
 public:
  static Registry& Global();

  Registry() = default;

  /// Returns the named instrument, creating it on first use. Pointers
  /// stay valid for the registry's lifetime — cache them at setup and
  /// update lock-free afterwards.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<int64_t> bounds);

  /// A provider contributes externally owned key/value metrics (the
  /// engine's ApuamaStats, the controller's ControllerStats) to every
  /// dump. The handle unregisters on destruction — components whose
  /// lifetime is shorter than the process (engines built per test)
  /// MUST hold it so dumps never call into freed objects. Callbacks
  /// run under the registry mutex and must not call back into it.
  using ProviderFn =
      std::function<std::vector<std::pair<std::string, uint64_t>>()>;
  class ProviderHandle {
   public:
    ProviderHandle() = default;
    ProviderHandle(ProviderHandle&& o) noexcept
        : registry_(o.registry_), id_(o.id_) {
      o.registry_ = nullptr;
    }
    ProviderHandle& operator=(ProviderHandle&& o) noexcept;
    ProviderHandle(const ProviderHandle&) = delete;
    ProviderHandle& operator=(const ProviderHandle&) = delete;
    ~ProviderHandle();

   private:
    friend class Registry;
    ProviderHandle(Registry* r, uint64_t id) : registry_(r), id_(id) {}
    Registry* registry_ = nullptr;
    uint64_t id_ = 0;
  };
  [[nodiscard]] ProviderHandle RegisterProvider(std::string prefix,
                                                ProviderFn fn);

  /// "name value" per line, sorted by name; histograms expand to
  /// name.count/.sum/.p50/.p95/.p99.
  std::string TextDump() const;
  /// One flat JSON object, same keys as TextDump.
  std::string JsonDump() const;

  /// Zeroes every instrument (providers are external and untouched).
  void Reset();

 private:
  void Unregister(uint64_t id);
  std::vector<std::pair<std::string, int64_t>> Snapshot() const;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  struct Provider {
    uint64_t id;
    std::string prefix;
    ProviderFn fn;
  };
  std::vector<Provider> providers_;
  uint64_t next_provider_id_ = 1;
};

}  // namespace apuama::obs

#endif  // APUAMA_OBS_METRICS_H_

// Column-major mirrors of row-store tables for vectorized execution.
//
// The row heap stays the source of truth (writes, indexes, clustered
// order all live there). A ColumnarTable is a read-only, per-column
// contiguous copy of the numeric columns, built lazily on the first
// columnar scan and kept in sync with the heap through the table's
// data_version() write epoch: any insert / delete / bulk load /
// recluster bumps the epoch, and the next columnar scan rebuilds the
// chunk before using it. Heap position i in the row store is element
// i of every materialized column, so selection vectors carry plain
// heap positions and the row path and column path address the same
// tuples.
#ifndef APUAMA_STORAGE_COLUMN_STORE_H_
#define APUAMA_STORAGE_COLUMN_STORE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/table.h"
#include "types/value.h"

namespace apuama::storage {

/// One materialized column. Integer-family columns (kInt64, kDate)
/// land in `i64`, kDouble columns in `f64` — except kDouble columns
/// whose non-null values are all kInt64 (the schema accepts ints
/// where doubles are declared): those land in `i64` with type kInt64,
/// which is exactly what the row path's Values hold, so promotion
/// decisions stay byte-for-byte identical. kDouble columns that MIX
/// int and double values are left unmaterialized (`materialized ==
/// false`) and expressions over them fall back to row-wise
/// evaluation.
///
/// String columns are dictionary-encoded (`dict_encoded == true`,
/// `materialized` stays false): `dict` holds the sorted distinct
/// values and `codes[i]` is row i's index into it (meaningless where
/// the null bitmap is set). Because the dictionary is sorted in
/// Value::Compare order (std::string::compare), every equality / IN /
/// range predicate over the column reduces to an integer compare on
/// the code — the row path's string compares, one dictionary lookup
/// early. Expressions still gather Values from the heap; only
/// predicates read codes.
struct ColumnVector {
  ValueType type = ValueType::kNull;
  bool materialized = false;
  std::vector<int64_t> i64;
  std::vector<double> f64;
  /// Per-row null flags; empty (and has_nulls false) when the column
  /// holds no NULLs, so the common case costs no mask reads.
  std::vector<uint8_t> nulls;
  bool has_nulls = false;
  /// Dictionary encoding (string columns only).
  bool dict_encoded = false;
  std::vector<std::string> dict;  // sorted, distinct
  std::vector<int32_t> codes;     // per row; undefined where null

  bool IsNull(size_t i) const { return has_nulls && nulls[i] != 0; }
};

/// Column-major snapshot of one table at one write epoch.
struct ColumnarTable {
  uint64_t data_version = 0;
  size_t num_rows = 0;
  std::vector<ColumnVector> cols;  // positionally matches the schema
};

/// Cache of columnar chunks, keyed by table id (catalog ids are
/// monotonic and never reused). Not thread-safe, same contract as
/// Table: callers (simulated nodes) serialize, and the executor only
/// consults the store on the coordinator before fanning morsels out
/// to worker threads.
class ColumnStore {
 public:
  struct GetResult {
    const ColumnarTable* chunk = nullptr;
    bool built = false;    // first materialization for this table
    bool rebuilt = false;  // re-materialization after a write epoch bump
  };

  /// Returns the chunk for `t`, (re)building it if the table has no
  /// chunk yet or the heap moved past the chunk's write epoch.
  GetResult Get(const Table& t);

  /// Drops the cached chunk for a table id (e.g. DROP TABLE).
  void Evict(uint32_t table_id) { chunks_.erase(table_id); }

 private:
  std::unordered_map<uint32_t, std::unique_ptr<ColumnarTable>> chunks_;
};

}  // namespace apuama::storage

#endif  // APUAMA_STORAGE_COLUMN_STORE_H_

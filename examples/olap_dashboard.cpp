// A decision-support "dashboard" session: the paper's 8 TPC-H queries
// run through the full middleware stack, then a small capacity-
// planning sweep on the virtual-time simulator (how would this
// workload behave on 2 / 4 / 8 nodes?).
//
//   $ ./build/examples/olap_dashboard
#include <chrono>
#include <cstdio>

#include "apuama/apuama_engine.h"
#include "cjdbc/controller.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "tpch/tpch_catalog.h"
#include "workload/cluster_sim.h"
#include "workload/runner.h"
#include "workload/sequences.h"

using namespace apuama;  // NOLINT: example code

int main() {
  tpch::TpchData data(tpch::DbgenOptions{.scale_factor = 0.002});
  cjdbc::ReplicaSet replicas(4, cjdbc::ReplicaSet::NodeOptions{});
  if (!data.LoadIntoReplicas(&replicas).ok()) return 1;
  ApuamaEngine engine(&replicas, tpch::MakeTpchCatalog(data));
  cjdbc::Controller controller(
      std::make_unique<ApuamaDriver>(&engine));

  std::printf("== Running the paper's 8 TPC-H queries on a 4-node "
              "Apuama cluster ==\n\n");
  for (int q : tpch::PaperQueryNumbers()) {
    auto sql = tpch::QuerySql(q);
    auto t0 = std::chrono::steady_clock::now();
    auto r = controller.Execute(*sql);
    auto t1 = std::chrono::steady_clock::now();
    if (!r.ok()) {
      std::printf("Q%d FAILED: %s\n", q, r.status().ToString().c_str());
      return 1;
    }
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    std::printf("Q%-2d  %-60s  %4zu row(s)  %7.1f ms\n", q,
                tpch::QueryDescription(q), r->rows.size(), ms);
    // First row as a teaser.
    if (!r->rows.empty()) {
      std::string teaser;
      for (size_t c = 0; c < r->rows[0].size() && c < 4; ++c) {
        if (c > 0) teaser += " | ";
        teaser += r->column_names[c] + "=" + r->rows[0][c].ToString();
      }
      std::printf("      -> %s%s\n", teaser.c_str(),
                  r->rows[0].size() > 4 ? " | ..." : "");
    }
  }
  const auto& st = engine.stats();
  std::printf("\nApuama: %llu SVP queries, %llu pass-through reads, "
              "%llu not rewritable, %llu partial rows composed\n",
              static_cast<unsigned long long>(st.svp_queries),
              static_cast<unsigned long long>(st.passthrough_reads),
              static_cast<unsigned long long>(st.non_rewritable),
              static_cast<unsigned long long>(st.partial_rows_total));

  std::printf("\n== Capacity planning: 3 analyst sessions, virtual-time "
              "simulation ==\n\n");
  std::printf("%-6s  %-14s  %-12s\n", "nodes", "queries/min", "makespan");
  auto sequences = workload::MakeQuerySequences(3, /*seed=*/1);
  for (int n : {2, 4, 8}) {
    workload::ClusterSimOptions opts;
    opts.num_nodes = n;
    workload::ClusterSim cluster(data, opts);
    auto r = workload::RunStreams(&cluster, sequences);
    if (!r.status.ok()) return 1;
    std::printf("%-6d  %-14.1f  %-.2fs\n", n, r.queries_per_minute,
                SimToSeconds(r.makespan));
  }
  std::printf("\n(virtual time; see bench/fig3a_throughput for the full "
              "figure)\n");
  return 0;
}

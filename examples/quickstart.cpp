// Quickstart: build a 4-node Apuama cluster over a small TPC-H
// database, watch SVP rewrite the paper's running example, and check
// the composed result against single-node execution.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "apuama/apuama_engine.h"
#include "cjdbc/controller.h"
#include "sql/parser.h"
#include "tpch/dbgen.h"
#include "tpch/tpch_catalog.h"

using namespace apuama;  // NOLINT: example code

int main() {
  // 1. Generate a deterministic TPC-H population (tiny scale factor).
  tpch::TpchData data(tpch::DbgenOptions{.scale_factor = 0.002});
  std::printf("TPC-H data: %lld orders, %zu lineitems (SF=%.3f)\n",
              static_cast<long long>(data.num_orders()),
              data.table("lineitem").size(), data.scale_factor());

  // 2. A replicated cluster: 4 independent DBMS instances.
  cjdbc::ReplicaSet replicas(4, cjdbc::ReplicaSet::NodeOptions{});
  if (!data.LoadIntoReplicas(&replicas).ok()) return 1;

  // 3. Apuama on top: Data Catalog declares the virtual partitioning
  //    (orders.o_orderkey / lineitem.l_orderkey share one key space).
  ApuamaEngine engine(&replicas, tpch::MakeTpchCatalog(data));

  // 4. C-JDBC controller with the Apuama driver — no controller code
  //    knows intra-query parallelism exists.
  cjdbc::Controller controller(std::make_unique<ApuamaDriver>(&engine));

  // 5. The paper's running example (section 2).
  const std::string query = "select sum(l_extendedprice) from lineitem";
  std::printf("\nOriginal query:\n  %s\n", query.c_str());

  // Peek at the rewrite the Intra-Query Executor will use.
  SvpRewriter rewriter(engine.data_catalog());
  auto parsed = sql::ParseSelect(query);
  auto plan = rewriter.Rewrite(**parsed);
  if (!plan.ok()) {
    std::printf("rewrite failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("\nSVP sub-queries (one per node):\n");
  for (auto [lo, hi] : plan->MakeIntervals(replicas.num_nodes())) {
    std::printf("  %s\n", plan->SubquerySql(lo, hi).c_str());
  }
  std::printf("\nComposition query (runs in the in-memory composer):\n"
              "  %s\n", plan->composition_sql().c_str());

  // 6. Execute through the full stack.
  auto result = controller.Execute(query);
  if (!result.ok()) {
    std::printf("execution failed: %s\n",
                result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nCluster result:\n%s", result->ToString().c_str());
  std::printf("Execution stats: %s\n", result->stats.ToString().c_str());

  // 7. Cross-check against a single standalone node.
  engine::Database single;
  if (!data.LoadInto(&single).ok()) return 1;
  auto expected = single.Execute(query);
  std::printf("Single-node result:\n%s", expected->ToString().c_str());

  bool match = expected->rows.size() == result->rows.size() &&
               expected->rows[0][0].ToString() ==
                   result->rows[0][0].ToString();
  std::printf("\n%s\n", match ? "MATCH: SVP composition is exact."
                              : "MISMATCH (bug!)");
  std::printf("Apuama stats: svp_queries=%llu passthrough=%llu\n",
              static_cast<unsigned long long>(engine.stats().svp_queries),
              static_cast<unsigned long long>(
                  engine.stats().passthrough_reads));
  return match ? 0 : 1;
}

#include "common/rng.h"

#include <cassert>

namespace apuama {

uint64_t Rng::Next() {
  // SplitMix64 (Vigna). Public domain reference algorithm.
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Next() % range);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

std::string Rng::NextString(size_t len) {
  std::string s(len, 'a');
  for (char& c : s) c = static_cast<char>('a' + (Next() % 26));
  return s;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace apuama

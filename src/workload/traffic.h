// Open-loop traffic harness: arrival processes for the admission
// experiments.
//
// Closed-loop sequences (sequences.h) cannot overload the cluster —
// each client waits for its answer, so the offered load self-limits
// at capacity. Overload only exists open loop: arrivals keep coming
// at the offered rate whether or not the cluster keeps up, queueing
// delay grows without bound past saturation, and the admission
// ladder's whole job becomes visible. The harness models three
// arrival shapes:
//
//   kPoisson  memoryless arrivals at a constant offered rate — the
//             aggregate of many independent clients;
//   kBursty   a two-state MMPP: calm periods at the base rate and
//             bursts at burst_factor times it, with exponentially
//             distributed dwell times in each state;
//   kDiurnal  a sinusoidal rate curve (period, modulation depth)
//             sampled by thinning — the day/night load cycle
//             compressed into virtual time.
//
// Offered load can be given directly (rate_qps) or as an open-loop
// client population (num_clients / think_time_us — 10k clients with
// 1 s of think time offer 10k qps), so experiments scale to millions
// of simulated clients without a thread each. Tenant mixes weight
// arrivals across classes with their own SLOs, priorities, and query
// pools, registered as tenant classes on the sim's admission
// controller.
//
// Everything is a pure function of the seed: the arrival timeline is
// precomputed with common::Rng, scheduled on the virtual clock, and
// the whole run happens inside the single-threaded event loop —
// same seed, same admit/degrade/shed sequence, bit for bit.
#ifndef APUAMA_WORKLOAD_TRAFFIC_H_
#define APUAMA_WORKLOAD_TRAFFIC_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "workload/cluster_sim.h"

namespace apuama::workload {

enum class ArrivalShape { kPoisson, kBursty, kDiurnal };

/// One tenant class in the mix.
struct TenantSpec {
  std::string name;
  /// Share of arrivals (normalized over the mix).
  double weight = 1.0;
  /// Class defaults registered on the admission controller; -1 / 0 =
  /// inherit the controller defaults.
  int priority = -1;
  int64_t slo_us = 0;
  /// Query pool; each arrival picks uniformly.
  std::vector<std::string> queries;
};

struct TrafficOptions {
  ArrivalShape shape = ArrivalShape::kPoisson;
  /// Offered arrival rate (queries per second of virtual time).
  double rate_qps = 100.0;
  /// Alternative load spec: an open-loop population of think-time
  /// clients. When > 0, overrides rate_qps with
  /// num_clients / think_time (e.g. 100k clients, 1 s think = 100k
  /// qps offered).
  int64_t num_clients = 0;
  int64_t think_time_us = 1'000'000;
  uint64_t seed = 42;
  /// Arrivals are generated on [0, duration_us); the run then drains.
  SimTime duration_us = 1'000'000;
  /// kBursty: burst-state rate = rate * burst_factor; exponential
  /// dwell times with these means.
  double burst_factor = 4.0;
  SimTime burst_dwell_us = 50'000;
  SimTime calm_dwell_us = 200'000;
  /// kDiurnal: rate(t) = rate * (1 + depth * sin(2π t / period)).
  SimTime diurnal_period_us = 500'000;
  double diurnal_depth = 0.8;
  /// SLO charged to tenants that set none (accounting only).
  int64_t default_slo_us = 50'000;
  std::vector<TenantSpec> tenants;
};

struct TenantStats {
  uint64_t offered = 0;
  uint64_t completed = 0;
  uint64_t degraded = 0;
  uint64_t shed = 0;
  uint64_t slo_met = 0;
};

/// Aggregate outcome of one open-loop run.
struct OpenLoopResult {
  uint64_t offered = 0;
  uint64_t completed = 0;  // answered (exact or degraded)
  uint64_t degraded = 0;   // answered from the approx tier (stage 2)
  uint64_t shed = 0;       // rejected with Overloaded (stage 3)
  uint64_t errors = 0;     // non-overload failures
  /// Answered within the request's SLO — the goodput numerator.
  uint64_t slo_met = 0;
  /// Latencies of answered requests, in completion order.
  std::vector<SimTime> latencies;
  /// One character per arrival, in arrival order: 'a' admitted,
  /// 'd' degraded, 's' shed, 'e' error. The determinism fingerprint —
  /// two runs with the same seed must produce identical strings.
  std::string action_seq;
  std::map<std::string, TenantStats> per_tenant;

  /// p-th percentile of answered latencies (0 when none).
  SimTime Percentile(double p) const;
  /// SLO-met answers per second of virtual time.
  double GoodputQps(SimTime duration_us) const;
};

/// Precomputes the arrival timeline from the seed, registers tenant
/// classes on the sim's admission controller (when present), runs
/// every arrival through the sim to completion.
OpenLoopResult RunOpenLoop(ClusterSim* sim, const TrafficOptions& options);

}  // namespace apuama::workload

#endif  // APUAMA_WORKLOAD_TRAFFIC_H_

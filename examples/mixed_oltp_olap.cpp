// Mixed OLTP + OLAP with real threads: refresh transactions stream in
// while analysts run heavy queries. Demonstrates the consistency
// machinery of the paper's section 3 — SVP queries wait for replica
// quiescence, new updates are blocked during dispatch, and replicas
// end byte-identical.
//
//   $ ./build/examples/mixed_oltp_olap
#include <atomic>
#include <cstdio>
#include <thread>

#include "apuama/apuama_engine.h"
#include "cjdbc/controller.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "tpch/refresh.h"
#include "tpch/tpch_catalog.h"

using namespace apuama;  // NOLINT: example code

int main() {
  tpch::TpchData data(tpch::DbgenOptions{.scale_factor = 0.002});
  cjdbc::ReplicaSet replicas(3, cjdbc::ReplicaSet::NodeOptions{});
  if (!data.LoadIntoReplicas(&replicas).ok()) return 1;

  // Register key headroom so refresh inserts (new, higher orderkeys)
  // stay inside the partitioned domain.
  ApuamaEngine engine(&replicas,
                      tpch::MakeTpchCatalog(data, /*headroom=*/500));
  cjdbc::Controller controller(std::make_unique<ApuamaDriver>(&engine));

  auto stream = tpch::MakeRefreshStream(data.max_orderkey() + 1,
                                        /*num_orders=*/25, /*seed=*/11);
  std::printf("Refresh stream: %zu statements (insert-then-delete)\n",
              stream.size());

  std::atomic<int> olap_done{0};
  std::atomic<bool> failed{false};

  std::thread updater([&] {
    for (const auto& stmt : stream) {
      if (!controller.Execute(stmt.sql).ok()) failed = true;
    }
  });
  std::thread analyst1([&] {
    for (int i = 0; i < 6; ++i) {
      auto r = controller.Execute(*tpch::QuerySql(6));
      if (!r.ok()) failed = true;
      ++olap_done;
    }
  });
  std::thread analyst2([&] {
    for (int i = 0; i < 4; ++i) {
      auto r = controller.Execute(*tpch::QuerySql(1));
      if (!r.ok()) failed = true;
      ++olap_done;
    }
  });
  updater.join();
  analyst1.join();
  analyst2.join();

  std::printf("OLAP queries completed: %d, failures: %s\n",
              olap_done.load(), failed.load() ? "YES" : "none");
  std::printf("Consistency protocol: %llu SVP barrier waits, "
              "%llu writes blocked, %llu logical writes\n",
              static_cast<unsigned long long>(
                  engine.consistency()->svp_waits()),
              static_cast<unsigned long long>(
                  engine.consistency()->writes_blocked()),
              static_cast<unsigned long long>(
                  engine.consistency()->logical_writes()));

  // All replicas must be in the same committed state.
  std::printf("Replicas consistent: %s\n",
              engine.ReplicasConsistent() ? "yes" : "NO (bug!)");
  for (int i = 0; i < replicas.num_nodes(); ++i) {
    auto r = replicas.ExecuteOn(i,
                                "select count(*), sum(o_orderkey) from "
                                "orders");
    std::printf("  node %d: %s", i, r->ToString().c_str());
  }
  // The refresh stream deletes everything it inserted: final count
  // must equal the generated population.
  auto final_count =
      replicas.ExecuteOn(0, "select count(*) from lineitem");
  bool restored = final_count->rows[0][0].int_val() ==
                  static_cast<int64_t>(data.table("lineitem").size());
  std::printf("Data restored after insert+delete stream: %s\n",
              restored ? "yes" : "NO (bug!)");
  return (!failed.load() && restored && engine.ReplicasConsistent()) ? 0
                                                                     : 1;
}

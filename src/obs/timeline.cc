#include "obs/timeline.h"

namespace apuama::obs {

namespace {
thread_local RequestTimeline* t_timeline = nullptr;
}  // namespace

TimelineScope::TimelineScope(RequestTimeline* timeline) : prev_(t_timeline) {
  t_timeline = timeline;
}

TimelineScope::~TimelineScope() { t_timeline = prev_; }

RequestTimeline* CurrentTimeline() { return t_timeline; }

void NoteAdmissionWait(int64_t wait_us) {
  if (t_timeline == nullptr) return;
  t_timeline->admission_wait_us += wait_us;
  t_timeline->have_admission = true;
}

}  // namespace apuama::obs

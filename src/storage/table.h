// Row-store table with clustered ordering and secondary indexes.
//
// The heap is a vector of rows kept sorted on the clustered key (the
// physical ordering the paper requires for SVP: "tuples of the virtual
// partition must be physically clustered according to the VPA").
// Secondary indexes map a column value to the clustered-key tuples of
// matching rows, so they stay valid as row positions shift.
#ifndef APUAMA_STORAGE_TABLE_H_
#define APUAMA_STORAGE_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"
#include "types/schema.h"

namespace apuama::storage {

class Table;

/// Compares clustered-key tuples lexicographically.
struct KeyLess {
  bool operator()(const Row& a, const Row& b) const {
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

/// Secondary (non-clustered) ordered index on one column.
/// Entries reference rows by their clustered-key tuple, which is
/// stable across heap reorganization.
class Index {
 public:
  Index(std::string name, int column_idx)
      : name_(std::move(name)), column_idx_(column_idx) {}

  const std::string& name() const { return name_; }
  int column_idx() const { return column_idx_; }
  size_t num_entries() const { return entries_.size(); }

  void Insert(const Value& key, Row pk) {
    entries_.emplace(key, std::move(pk));
  }
  void Erase(const Value& key, const Row& pk);
  void Clear() { entries_.clear(); }

  /// Clustered keys of rows with column == key.
  std::vector<const Row*> Lookup(const Value& key) const;

  /// Clustered keys of rows with lo <= column <= hi (either bound may
  /// be omitted via null Value + flag).
  std::vector<const Row*> LookupRange(const Value* lo, bool lo_inclusive,
                                      const Value* hi,
                                      bool hi_inclusive) const;

 private:
  std::string name_;
  int column_idx_;
  std::multimap<Value, Row> entries_;
};

/// A table. Not thread-safe; callers (simulated nodes) serialize.
class Table {
 public:
  Table(uint32_t id, std::string name, Schema schema);

  uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Monotonic write epoch: bumped by every heap mutation (insert,
  /// bulk load, delete, reclustering). Derived read-side structures —
  /// the columnar chunk cache — compare this against the version they
  /// were built at to decide whether a lazy rebuild is due.
  uint64_t data_version() const { return data_version_; }

  /// Declares the clustered key (column indices). Re-sorts the heap if
  /// data is already present and rebuilds secondary indexes.
  Status SetClusteredKey(std::vector<int> key_columns);
  const std::vector<int>& clustered_key() const { return key_cols_; }

  /// Creates a secondary ordered index on one column.
  Status CreateIndex(const std::string& index_name,
                     const std::string& column_name);
  /// Index on `column_idx`, or nullptr.
  const Index* FindIndexOnColumn(int column_idx) const;
  const std::vector<std::unique_ptr<Index>>& indexes() const {
    return indexes_;
  }

  /// Validates and inserts, keeping clustered order and indexes.
  Status Insert(Row row);
  /// Bulk insert of pre-sorted-or-not rows; sorts once at the end.
  Status BulkLoad(std::vector<Row> rows);

  /// Deletes rows at the given positions (sorted ascending).
  void DeleteAt(const std::vector<size_t>& positions);

  /// Position range [begin, end) of rows whose *first clustered key
  /// column* lies in [lo, hi) / (lo, hi] etc. Bounds may be null.
  /// Only meaningful when a clustered key is set.
  std::pair<size_t, size_t> ClusteredRange(const Value* lo,
                                           bool lo_inclusive,
                                           const Value* hi,
                                           bool hi_inclusive) const;

  /// Heap position of the row with this clustered-key tuple, or
  /// num_rows() when absent.
  size_t PositionOfKey(const Row& key) const;

  /// Extracts the clustered-key tuple of a row.
  Row KeyOfRow(const Row& row) const;

  // --- Morsel-range iteration ----------------------------------------------

  /// One scan morsel: a contiguous heap-position range [begin, end).
  struct Morsel {
    size_t begin;
    size_t end;
  };

  /// Splits [begin, end) into morsels of roughly `target_rows` rows
  /// each, with interior boundaries aligned to page boundaries so no
  /// logical page is shared between two morsels (workers then never
  /// contend on a page's rows). Empty when begin >= end.
  std::vector<Morsel> Morsels(size_t begin, size_t end,
                              size_t target_rows) const;

  // --- Page accounting -----------------------------------------------------

  /// Rows stored per logical page (>=1), derived from average row size.
  size_t rows_per_page() const;
  /// Total pages occupied by the heap.
  size_t num_pages() const;
  /// Page holding heap position `pos`.
  PageId PageOfPosition(size_t pos) const;

  /// Min / max of the first clustered key column (planner statistics).
  /// Null values when the table is empty or has no clustered key.
  Value MinClusteredKey() const;
  Value MaxClusteredKey() const;

 private:
  void ReindexAll();
  bool RowKeyLess(const Row& a, const Row& b) const;

  uint32_t id_;
  std::string name_;
  Schema schema_;
  std::vector<int> key_cols_;
  std::vector<Row> rows_;
  std::vector<std::unique_ptr<Index>> indexes_;

  uint64_t data_version_ = 0;

  mutable size_t cached_rows_per_page_ = 0;
  mutable size_t cached_at_rows_ = SIZE_MAX;
};

}  // namespace apuama::storage

#endif  // APUAMA_STORAGE_TABLE_H_

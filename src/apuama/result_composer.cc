#include "apuama/result_composer.h"

#include "apuama/svp_rewriter.h"

namespace apuama {

Result<engine::QueryResult> ResultComposer::Compose(
    const std::vector<const engine::QueryResult*>& partials,
    const std::string& composition_sql, CompositionStats* stats) {
  APUAMA_RETURN_NOT_OK(memdb_.LoadPartials(kPartialsTable, partials));
  auto result = memdb_.Execute(composition_sql);
  if (stats != nullptr && result.ok()) {
    stats->partial_rows = 0;
    for (const auto* p : partials) stats->partial_rows += p->rows.size();
    stats->output_rows = result->rows.size();
    stats->compose_exec = result->stats;
  }
  memdb_.DropIfExists(kPartialsTable);
  return result;
}

}  // namespace apuama

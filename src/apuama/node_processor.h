// Node Processor — one per backend DBMS (paper Fig. 1(b)).
//
// Mediates every request sent to its node: plain requests pass
// through; SVP sub-queries run with full table scans disabled
// (`SET enable_seqscan = off`, restored afterwards) so the optimizer
// cannot ignore the virtual partition — the paper's forced-index
// technique (section 3). Tracks the node's transaction counter for
// the consistency manager and keeps a small connection pool.
#ifndef APUAMA_APUAMA_NODE_PROCESSOR_H_
#define APUAMA_APUAMA_NODE_PROCESSOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "cjdbc/connection.h"
#include "common/status.h"
#include "engine/query_result.h"

namespace apuama {

struct NodeProcessorOptions {
  /// Apply the forced-index setting around SVP sub-queries
  /// (disable for the ablation bench).
  bool force_index_for_svp = true;
  /// Connections in the pool (bounds concurrent statements per node).
  int pool_size = 2;
  /// Intra-node morsel-execution threads applied to this node's
  /// session (third parallelism level). <= 0 leaves the node at its
  /// own default (APUAMA_EXEC_THREADS / hardware concurrency). The
  /// engine sets this from its cluster-wide budget so n_nodes nodes
  /// never oversubscribe the host with n_nodes * default threads.
  int exec_threads = 0;
};

class NodeProcessor {
 public:
  NodeProcessor(int node_id, cjdbc::ReplicaSet* replicas,
                NodeProcessorOptions options);

  int node_id() const { return node_id_; }

  /// Pass-through execution (OLTP statements, non-SVP reads).
  Result<engine::QueryResult> Execute(const std::string& sql);

  /// Batch pass-through: the whole batch occupies one pool slot and
  /// may run as one shared morsel scan on the node
  /// (Database::ExecuteSharedSelects). Results align with `sqls`.
  std::vector<Result<engine::QueryResult>> ExecuteShared(
      const std::vector<std::string>& sqls);

  /// Executes one SVP sub-query with forced index usage.
  Result<engine::QueryResult> ExecuteSubquery(const std::string& sql);

  /// Node's committed-transaction counter (consistency checks).
  uint64_t TransactionCounter() const;

  uint64_t statements_executed() const { return statements_; }
  uint64_t subqueries_executed() const { return subqueries_; }

 private:
  int node_id_;
  cjdbc::ReplicaSet* replicas_;
  NodeProcessorOptions options_;
  // The pool bounds concurrency; slots are interchangeable, so a
  // counting guard stands in for individual connection objects.
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  int pool_available_;
  // Concurrent clients bump these outside any lock.
  std::atomic<uint64_t> statements_{0};
  std::atomic<uint64_t> subqueries_{0};
};

}  // namespace apuama

#endif  // APUAMA_APUAMA_NODE_PROCESSOR_H_

#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace apuama::obs {

std::string RenderKvText(
    const std::vector<std::pair<std::string, uint64_t>>& kv) {
  std::string out;
  for (const auto& [k, v] : kv) {
    if (!out.empty()) out += " ";
    out += StrFormat("%s=%llu", k.c_str(),
                     static_cast<unsigned long long>(v));
  }
  return out;
}

std::string RenderKvJson(
    const std::vector<std::pair<std::string, uint64_t>>& kv) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : kv) {
    if (!first) out += ",";
    first = false;
    out += StrFormat("\"%s\":%llu", k.c_str(),
                     static_cast<unsigned long long>(v));
  }
  out += "}";
  return out;
}

Histogram::Histogram(std::vector<int64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::Observe(int64_t value) {
  // First bucket whose upper bound covers the value; past the last
  // bound it is the overflow bucket.
  size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t prev = max_.load(std::memory_order_relaxed);
  while (value > prev &&
         !max_.compare_exchange_weak(prev, value,
                                     std::memory_order_relaxed)) {
  }
}

int64_t Histogram::Percentile(double p) const {
  uint64_t total = count();
  if (total == 0) return 0;
  // Rank of the p-th percentile observation (1-based, nearest-rank).
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      if (i < bounds_.size()) return bounds_[i];
      return max_.load(std::memory_order_relaxed);
    }
  }
  return max_.load(std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::vector<int64_t> Histogram::DefaultLatencyBoundsUs() {
  std::vector<int64_t> bounds;
  for (int64_t decade = 1; decade <= 10'000'000; decade *= 10) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2);
    bounds.push_back(decade * 5);
  }
  bounds.push_back(100'000'000);
  return bounds;
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();
  return *registry;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  std::vector<int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

Registry::ProviderHandle& Registry::ProviderHandle::operator=(
    ProviderHandle&& o) noexcept {
  if (this != &o) {
    if (registry_ != nullptr) registry_->Unregister(id_);
    registry_ = o.registry_;
    id_ = o.id_;
    o.registry_ = nullptr;
  }
  return *this;
}

Registry::ProviderHandle::~ProviderHandle() {
  if (registry_ != nullptr) registry_->Unregister(id_);
}

Registry::ProviderHandle Registry::RegisterProvider(std::string prefix,
                                                    ProviderFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_provider_id_++;
  providers_.push_back({id, std::move(prefix), std::move(fn)});
  return ProviderHandle(this, id);
}

void Registry::Unregister(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = providers_.begin(); it != providers_.end(); ++it) {
    if (it->id == id) {
      providers_.erase(it);
      return;
    }
  }
}

std::vector<std::pair<std::string, int64_t>> Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  for (const auto& [name, c] : counters_) {
    out.emplace_back(name, static_cast<int64_t>(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    out.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    out.emplace_back(name + ".count", static_cast<int64_t>(h->count()));
    out.emplace_back(name + ".sum", h->sum());
    out.emplace_back(name + ".p50", h->Percentile(50));
    out.emplace_back(name + ".p95", h->Percentile(95));
    out.emplace_back(name + ".p99", h->Percentile(99));
  }
  for (const auto& p : providers_) {
    for (const auto& [key, value] : p.fn()) {
      out.emplace_back(p.prefix + "." + key, static_cast<int64_t>(value));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string Registry::TextDump() const {
  std::string out;
  for (const auto& [name, value] : Snapshot()) {
    out += StrFormat("%s %lld\n", name.c_str(),
                     static_cast<long long>(value));
  }
  return out;
}

std::string Registry::JsonDump() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : Snapshot()) {
    if (!first) out += ",";
    first = false;
    out += StrFormat("\"%s\":%lld", name.c_str(),
                     static_cast<long long>(value));
  }
  out += "}";
  return out;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace apuama::obs

#include "workload/cluster_sim.h"

#include <algorithm>

#include "engine/database.h"
#include "sql/parser.h"
#include "storage/catalog.h"

namespace apuama::workload {

using engine::QueryResult;

struct ClusterSim::SvpTicket {
  std::string original_sql;
  SvpPlan plan;
  // SVP: one slot per node. AVP: grows per chunk.
  std::vector<QueryResult> partials;
  std::vector<std::string> sub_sql;  // SVP only
  int remaining = 0;                 // SVP: nodes outstanding;
                                     // AVP: nodes still pumping chunks
  std::unique_ptr<AvpScheduler> avp;
  SimOutcome outcome;
  Callback done;
};

struct ClusterSim::WriteTicket {
  std::string sql;
  int remaining = 0;
  SimOutcome outcome;
  Callback done;
};

ClusterSim::ClusterSim(const tpch::TpchData& data, ClusterSimOptions options)
    : options_(options),
      catalog_(tpch::MakeTpchCatalog(data, options.key_headroom)),
      balancer_(options.num_nodes, options.policy) {
  // Derive the paper-like buffer-pool size when unspecified: the full
  // fact table must miss on one node while a 1/4 partition fits.
  engine::Database probe(engine::DatabaseOptions{.buffer_pool_pages = 0});
  Status s = data.LoadInto(&probe);
  (void)s;
  size_t lineitem_pages =
      (*probe.catalog()->GetTable("lineitem"))->num_pages();
  size_t orders_pages = (*probe.catalog()->GetTable("orders"))->num_pages();
  pool_pages_ = options.buffer_pool_pages != 0
                    ? options.buffer_pool_pages
                    : std::max<size_t>(
                          64, (lineitem_pages + orders_pages) * 30 / 100);

  replicas_ = std::make_unique<cjdbc::ReplicaSet>(
      options.num_nodes,
      cjdbc::ReplicaSet::NodeOptions{.buffer_pool_pages = pool_pages_});
  s = data.LoadIntoReplicas(replicas_.get());
  (void)s;
  const int exec_threads = options.exec_threads > 0
                               ? options.exec_threads
                               : engine::DefaultExecThreads();
  for (int i = 0; i < options.num_nodes; ++i) {
    replicas_->node(i)->settings()->exec_threads = exec_threads;
    replicas_->node(i)->settings()->enable_join_parallel =
        options.join_parallel;
  }
  rewriter_ = std::make_unique<SvpRewriter>(&catalog_);
  for (int i = 0; i < options.num_nodes; ++i) {
    servers_.push_back(
        std::make_unique<sim::SimServer>(&sim_, options.node_mpl));
  }
}

ClusterSim::~ClusterSim() = default;

std::vector<int> ClusterSim::PendingCounts() const {
  std::vector<int> out;
  out.reserve(servers_.size());
  for (const auto& s : servers_) out.push_back(s->pending());
  return out;
}

SimTime ClusterSim::node_busy_time(int i) const {
  return servers_[static_cast<size_t>(i)]->busy_time();
}

SimTime ClusterSim::Scaled(int node, SimTime t) const {
  if (options_.node_speed_factors.empty()) return t;
  double f = options_.node_speed_factors[static_cast<size_t>(node)];
  return static_cast<SimTime>(static_cast<double>(t) * f);
}

bool ClusterSim::ReplicasConverged() const {
  uint64_t first = replicas_->node(0)->transaction_counter();
  for (int i = 1; i < options_.num_nodes; ++i) {
    if (replicas_->node(i)->transaction_counter() != first) return false;
  }
  return true;
}

void ClusterSim::SubmitRead(const std::string& sql, Callback done) {
  SimOutcome outcome;
  outcome.submitted = sim_.now();

  if (options_.enable_intra_query) {
    auto parsed = sql::ParseSelect(sql);
    if (parsed.ok() && rewriter_->TouchesFactTable(**parsed)) {
      auto plan = rewriter_->Rewrite(**parsed);
      if (plan.ok()) {
        auto ticket = std::make_shared<SvpTicket>();
        ticket->original_sql = sql;
        ticket->plan = std::move(plan).value();
        ticket->outcome = outcome;
        ticket->outcome.used_svp = true;
        ticket->done = std::move(done);
        if (options_.replication == ReplicationMode::kEager &&
            writes_in_flight_ > 0) {
          // Consistency barrier: wait for in-flight writes to land on
          // every replica before dispatching sub-queries.
          ++svp_barrier_waits_;
          waiting_svp_.push_back(std::move(ticket));
        } else {
          if (options_.replication == ReplicationMode::kLazy &&
              !ReplicasConverged()) {
            ++stale_svp_queries_;  // reading unequal replicas
          }
          DispatchIntraQuery(std::move(ticket));
        }
        return;
      }
      // Not rewritable: fall through to the inter-query path.
    }
  }

  // Inter-query path: the C-JDBC load balancer picks one node.
  ++passthrough_reads_;
  int node = balancer_.Choose(PendingCounts());
  auto shared_done = std::make_shared<Callback>(std::move(done));
  auto shared_outcome = std::make_shared<SimOutcome>(outcome);
  servers_[static_cast<size_t>(node)]->Enqueue(sim::SimServer::Job{
      [this, node, sql, shared_outcome] {
        auto r = replicas_->ExecuteOn(node, sql);
        shared_outcome->status = r.status();
        return Scaled(node, r.ok() ? options_.cost.StatementTime(r->stats)
                                   : options_.cost.message_us);
      },
      [shared_done, shared_outcome](SimTime t) {
        shared_outcome->completed = t;
        if (*shared_done) (*shared_done)(*shared_outcome);
      }});
}

void ClusterSim::DispatchIntraQuery(std::shared_ptr<SvpTicket> ticket) {
  ++svp_queries_;
  if (options_.intra_mode == IntraQueryMode::kAvp) {
    DispatchAvp(std::move(ticket));
  } else {
    DispatchSvp(std::move(ticket));
  }
  // Sub-queries dispatched: blocked writes may now proceed (updates
  // overlap sub-query execution, per the paper).
  while (!blocked_writes_.empty()) {
    auto w = std::move(blocked_writes_.front());
    blocked_writes_.pop_front();
    DispatchWrite(std::move(w));
  }
}

void ClusterSim::DispatchSvp(std::shared_ptr<SvpTicket> ticket) {
  const int n = options_.num_nodes;
  auto intervals = ticket->plan.MakeIntervals(n);
  ticket->sub_sql.clear();
  for (const auto& [lo, hi] : intervals) {
    ticket->sub_sql.push_back(ticket->plan.SubquerySql(lo, hi));
  }
  ticket->partials.resize(static_cast<size_t>(n));
  ticket->remaining = n;

  for (int i = 0; i < n; ++i) {
    servers_[static_cast<size_t>(i)]->Enqueue(sim::SimServer::Job{
        [this, ticket, i] {
          engine::Database* db = replicas_->node(i);
          const bool saved = db->settings()->enable_seqscan;
          if (options_.force_index_for_svp) {
            db->settings()->enable_seqscan = false;
          }
          auto r = db->Execute(ticket->sub_sql[static_cast<size_t>(i)]);
          db->settings()->enable_seqscan = saved;
          if (r.ok()) {
            SimTime t = options_.cost.StatementTime(r->stats);
            ticket->partials[static_cast<size_t>(i)] = std::move(r).value();
            return Scaled(i, t);
          }
          ticket->outcome.status = r.status();
          return Scaled(i, options_.cost.message_us);
        },
        [this, ticket](SimTime) {
          if (--ticket->remaining > 0) return;
          ComposeAndFinish(ticket);
        }});
  }
}

void ClusterSim::DispatchAvp(std::shared_ptr<SvpTicket> ticket) {
  const int n = options_.num_nodes;
  ticket->avp = std::make_unique<AvpScheduler>(
      n, ticket->plan.domain_min(), ticket->plan.domain_max(),
      options_.avp);
  ticket->remaining = n;  // nodes still pumping chunks
  for (int i = 0; i < n; ++i) {
    StartAvpChunk(ticket, i);
  }
}

void ClusterSim::StartAvpChunk(std::shared_ptr<SvpTicket> ticket,
                               int node) {
  auto chunk = ticket->avp->NextChunk(node);
  if (!chunk.has_value()) {
    if (--ticket->remaining == 0) {
      avp_chunks_ += static_cast<uint64_t>(ticket->avp->chunks_issued());
      avp_steals_ += static_cast<uint64_t>(ticket->avp->steals());
      ComposeAndFinish(ticket);
    }
    return;
  }
  auto [lo, hi] = *chunk;
  const int64_t keys = hi - lo;
  auto started = std::make_shared<SimTime>(0);
  servers_[static_cast<size_t>(node)]->Enqueue(sim::SimServer::Job{
      [this, ticket, node, lo, hi, started] {
        *started = sim_.now();
        std::string sub = ticket->plan.SubquerySql(lo, hi);
        engine::Database* db = replicas_->node(node);
        const bool saved = db->settings()->enable_seqscan;
        if (options_.force_index_for_svp) {
          db->settings()->enable_seqscan = false;
        }
        auto r = db->Execute(sub);
        db->settings()->enable_seqscan = saved;
        if (r.ok()) {
          SimTime t = options_.cost.StatementTime(r->stats);
          ticket->partials.push_back(std::move(r).value());
          return Scaled(node, t);
        }
        ticket->outcome.status = r.status();
        return Scaled(node, options_.cost.message_us);
      },
      [this, ticket, node, keys, started](SimTime t) {
        ticket->avp->ReportChunkTime(node, keys, t - *started);
        StartAvpChunk(ticket, node);
      }});
}

void ClusterSim::ComposeAndFinish(std::shared_ptr<SvpTicket> ticket) {
  if (!ticket->outcome.status.ok()) {
    ticket->outcome.completed = sim_.now();
    if (ticket->done) ticket->done(ticket->outcome);
    return;
  }
  std::vector<const QueryResult*> ptrs;
  ptrs.reserve(ticket->partials.size());
  for (const auto& p : ticket->partials) ptrs.push_back(&p);
  CompositionStats cstats;
  auto final_result = composer_.ComposeWithPlan(ptrs, ticket->plan, &cstats);
  ticket->outcome.status = final_result.status();
  SimTime compose_time =
      final_result.ok()
          ? options_.cost.CompositionTime(cstats.compose_exec,
                                          cstats.partial_rows)
          : 0;
  auto done = ticket->done;
  auto outcome = std::make_shared<SimOutcome>(ticket->outcome);
  sim_.After(compose_time, [this, done, outcome] {
    outcome->completed = sim_.now();
    if (done) done(*outcome);
  });
}

void ClusterSim::SubmitWrite(const std::string& sql, Callback done) {
  auto ticket = std::make_shared<WriteTicket>();
  ticket->sql = sql;
  ticket->outcome.submitted = sim_.now();
  ticket->done = std::move(done);
  if (options_.replication == ReplicationMode::kEager &&
      !waiting_svp_.empty()) {
    // An SVP query is preparing: new updates are blocked until its
    // sub-queries are dispatched.
    ++writes_blocked_count_;
    blocked_writes_.push_back(std::move(ticket));
    return;
  }
  DispatchWrite(std::move(ticket));
}

void ClusterSim::DispatchWrite(std::shared_ptr<WriteTicket> ticket) {
  const int n = options_.num_nodes;

  if (options_.replication == ReplicationMode::kLazy) {
    // Primary commit: the client returns once node 0 applied the
    // write; secondaries apply asynchronously after a propagation
    // delay (ordering preserved by FIFO node queues + event order).
    servers_[0]->Enqueue(sim::SimServer::Job{
        [this, ticket] {
          auto r = replicas_->ExecuteOn(0, ticket->sql);
          if (!r.ok()) ticket->outcome.status = r.status();
          return Scaled(0, r.ok() ? options_.cost.StatementTime(r->stats)
                                  : options_.cost.message_us);
        },
        [this, ticket](SimTime t) {
          ++writes_completed_;
          ticket->outcome.completed = t;
          write_latency_total_ += ticket->outcome.latency();
          if (ticket->done) ticket->done(ticket->outcome);
        }});
    for (int i = 1; i < n; ++i) {
      sim_.After(options_.lazy_propagation_delay_us, [this, ticket, i] {
        servers_[static_cast<size_t>(i)]->Enqueue(sim::SimServer::Job{
            [this, ticket, i] {
              auto r = replicas_->ExecuteOn(i, ticket->sql);
              return Scaled(i, r.ok()
                                   ? options_.cost.StatementTime(r->stats)
                                   : options_.cost.message_us);
            },
            nullptr});
      });
    }
    return;
  }

  // Eager (the paper): broadcast + coordination.
  ++writes_in_flight_;
  ticket->remaining = n;
  // Replica-consistency coordination: committing a write requires a
  // total-order round across all n replicas, and every node's session
  // is held for that round — so the per-node charge *grows with n*.
  // This is the mechanism behind the paper's Fig. 4 stall at 16-32
  // nodes ("the consistency protocol makes the update propagation
  // delay hurt performance").
  SimTime sync = options_.cost.WriteBroadcastOverhead(n);
  for (int i = 0; i < n; ++i) {
    servers_[static_cast<size_t>(i)]->Enqueue(sim::SimServer::Job{
        [this, ticket, i, sync] {
          auto r = replicas_->ExecuteOn(i, ticket->sql);
          if (!r.ok()) ticket->outcome.status = r.status();
          return Scaled(i, (r.ok() ? options_.cost.StatementTime(r->stats)
                                   : options_.cost.message_us) +
                               sync);
        },
        [this, ticket](SimTime t) {
          if (--ticket->remaining > 0) return;
          --writes_in_flight_;
          ++writes_completed_;
          ticket->outcome.completed = t;
          write_latency_total_ += ticket->outcome.latency();
          if (ticket->done) ticket->done(ticket->outcome);
          MaybeReleaseBarrier();
        }});
  }
}

void ClusterSim::MaybeReleaseBarrier() {
  if (writes_in_flight_ > 0) return;
  while (!waiting_svp_.empty()) {
    auto t = std::move(waiting_svp_.front());
    waiting_svp_.pop_front();
    DispatchIntraQuery(std::move(t));
  }
}

SimOutcome ClusterSim::RunToCompletion(const std::string& sql,
                                       bool is_write) {
  SimOutcome result;
  bool fired = false;
  auto cb = [&](const SimOutcome& o) {
    result = o;
    fired = true;
  };
  if (is_write) {
    SubmitWrite(sql, cb);
  } else {
    SubmitRead(sql, cb);
  }
  sim_.Run();
  if (!fired) result.status = Status::Internal("query never completed");
  return result;
}

Result<SimTime> ClusterSim::MeasureIsolated(const std::string& sql,
                                            int reps) {
  if (reps < 2) reps = 2;
  SimTime total = 0;
  for (int i = 0; i < reps; ++i) {
    SimOutcome o = RunToCompletion(sql);
    APUAMA_RETURN_NOT_OK(o.status);
    if (i > 0) total += o.latency();  // discard the cold first run
  }
  return total / (reps - 1);
}

}  // namespace apuama::workload

#include "tpch/tpch_catalog.h"

namespace apuama::tpch {

DataCatalog MakeTpchCatalog(const TpchData& data, int64_t headroom) {
  DataCatalog catalog;
  VirtualPartitionSpace space;
  space.name = "orderkey";
  space.members.push_back({"orders", "o_orderkey"});
  space.members.push_back({"lineitem", "l_orderkey"});
  space.min_value = data.min_orderkey();
  space.max_value = data.max_orderkey() + (headroom < 0 ? 0 : headroom);
  Status s = catalog.RegisterSpace(std::move(space));
  (void)s;  // cannot fail for this fixed space
  return catalog;
}

}  // namespace apuama::tpch

// TPC-H-style refresh streams (paper section 5, mixed workload).
//
// The paper's update sequence "first inserts an amount of data on the
// lineitem and orders tables; in a second step, the updates remove
// all inserted tuples". We generate matching statement pairs: each
// insert transaction adds one new order plus its lineitems (keys
// beyond the current maximum), and each delete transaction removes
// one previously inserted order with its lines.
#ifndef APUAMA_TPCH_REFRESH_H_
#define APUAMA_TPCH_REFRESH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace apuama::tpch {

struct RefreshStatement {
  std::string sql;
  bool is_insert = false;
  int64_t orderkey = 0;
};

/// A full insert-then-delete refresh stream over `num_orders` new
/// orders starting at key `first_orderkey`. Statement order: all
/// inserts (order row + its lineitems, two statements per order,
/// mirroring RF1), then all deletes (lineitems then order, two
/// statements per order, mirroring RF2).
std::vector<RefreshStatement> MakeRefreshStream(int64_t first_orderkey,
                                                int64_t num_orders,
                                                uint64_t seed);

/// Highest orderkey the stream touches (for Data Catalog domain
/// updates, if the caller wants exact interval coverage).
int64_t RefreshStreamMaxKey(int64_t first_orderkey, int64_t num_orders);

}  // namespace apuama::tpch

#endif  // APUAMA_TPCH_REFRESH_H_

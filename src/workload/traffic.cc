#include "workload/traffic.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace apuama::workload {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Exponential sample with the given mean (rejection-safe: u < 1).
double ExpSample(Rng* rng, double mean) {
  double u = rng->NextDouble();
  if (u >= 1.0) u = 0.9999999;
  return -mean * std::log(1.0 - u);
}

struct Arrival {
  SimTime at = 0;
  size_t tenant = 0;
  size_t query = 0;
};

/// The arrival timeline: a pure function of the options and the seed.
std::vector<Arrival> MakeArrivals(const TrafficOptions& options, Rng* rng) {
  double rate = options.rate_qps;
  if (options.num_clients > 0) {
    rate = static_cast<double>(options.num_clients) * 1e6 /
           static_cast<double>(std::max<int64_t>(1, options.think_time_us));
  }
  rate = std::max(1e-9, rate);
  const double mean_gap_us = 1e6 / rate;

  // Tenant pick by cumulative weight.
  std::vector<double> cum;
  double total = 0.0;
  for (const auto& t : options.tenants) {
    total += std::max(0.0, t.weight);
    cum.push_back(total);
  }

  std::vector<Arrival> arrivals;
  double t = 0.0;
  const double horizon = static_cast<double>(options.duration_us);
  // MMPP state (kBursty only).
  bool burst = false;
  double switch_at = ExpSample(rng, static_cast<double>(options.calm_dwell_us));
  while (true) {
    switch (options.shape) {
      case ArrivalShape::kPoisson:
        t += ExpSample(rng, mean_gap_us);
        break;
      case ArrivalShape::kBursty: {
        // Exponential gap at the current state's rate; crossing the
        // state-switch boundary flips the state and retries from it
        // (the standard MMPP simulation).
        for (;;) {
          const double gap = ExpSample(
              rng, burst ? mean_gap_us / options.burst_factor : mean_gap_us);
          if (t + gap <= switch_at) {
            t += gap;
            break;
          }
          t = switch_at;
          burst = !burst;
          switch_at =
              t + ExpSample(rng, static_cast<double>(
                                     burst ? options.burst_dwell_us
                                           : options.calm_dwell_us));
          if (t >= horizon) break;
        }
        break;
      }
      case ArrivalShape::kDiurnal: {
        // Thinning: candidates at the peak rate, accepted with
        // probability rate(t) / peak.
        const double peak = rate * (1.0 + options.diurnal_depth);
        for (;;) {
          t += ExpSample(rng, 1e6 / peak);
          if (t >= horizon) break;
          const double lambda =
              rate * (1.0 + options.diurnal_depth *
                                std::sin(2.0 * kPi * t /
                                         static_cast<double>(
                                             options.diurnal_period_us)));
          if (rng->NextDouble() * peak < lambda) break;
        }
        break;
      }
    }
    if (t >= horizon) break;
    Arrival a;
    a.at = static_cast<SimTime>(t);
    if (!cum.empty() && total > 0.0) {
      const double pick = rng->NextDouble() * total;
      a.tenant = static_cast<size_t>(
          std::lower_bound(cum.begin(), cum.end(), pick) - cum.begin());
      if (a.tenant >= options.tenants.size()) {
        a.tenant = options.tenants.size() - 1;
      }
    }
    const auto& pool = options.tenants[a.tenant].queries;
    if (!pool.empty()) {
      a.query = static_cast<size_t>(
          rng->Uniform(0, static_cast<int64_t>(pool.size()) - 1));
    }
    arrivals.push_back(a);
  }
  return arrivals;
}

}  // namespace

SimTime OpenLoopResult::Percentile(double p) const {
  if (latencies.empty()) return 0;
  std::vector<SimTime> sorted = latencies;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<size_t>(rank + 0.5)];
}

double OpenLoopResult::GoodputQps(SimTime duration_us) const {
  if (duration_us <= 0) return 0.0;
  return static_cast<double>(slo_met) * 1e6 /
         static_cast<double>(duration_us);
}

OpenLoopResult RunOpenLoop(ClusterSim* sim, const TrafficOptions& options) {
  OpenLoopResult result;
  if (options.tenants.empty()) return result;
  Rng rng(options.seed);
  const std::vector<Arrival> arrivals = MakeArrivals(options, &rng);
  result.offered = arrivals.size();
  result.action_seq.assign(arrivals.size(), '.');

  // Tenant classes carry the per-class SLO/priority; the per-request
  // tag names only the tenant, exercising class resolution.
  if (sim->admission() != nullptr) {
    for (const auto& t : options.tenants) {
      if (t.slo_us > 0 || t.priority >= 0) {
        sim->admission()->SetTenantClass(
            t.name, t.slo_us > 0 ? t.slo_us : options.default_slo_us,
            t.priority >= 0 ? t.priority : 4);
      }
    }
  }

  for (size_t i = 0; i < arrivals.size(); ++i) {
    const Arrival& a = arrivals[i];
    const TenantSpec& tenant = options.tenants[a.tenant];
    if (tenant.queries.empty()) continue;
    const std::string& sql = tenant.queries[a.query];
    const int64_t slo =
        tenant.slo_us > 0 ? tenant.slo_us : options.default_slo_us;
    result.per_tenant[tenant.name].offered++;
    ClusterSim::ReadTag tag;
    tag.tenant = tenant.name;
    sim->event_sim()->At(a.at, [sim, sql, tag, i, slo,
                                name = tenant.name, &result] {
      sim->SubmitRead(sql, tag, [i, slo, name, &result](
                                    const SimOutcome& o) {
        TenantStats& ts = result.per_tenant[name];
        if (o.shed) {
          result.shed++;
          ts.shed++;
          result.action_seq[i] = 's';
          return;
        }
        if (!o.status.ok()) {
          result.errors++;
          result.action_seq[i] = 'e';
          return;
        }
        result.completed++;
        ts.completed++;
        result.latencies.push_back(o.latency());
        if (o.degraded) {
          result.degraded++;
          ts.degraded++;
          result.action_seq[i] = 'd';
        } else {
          result.action_seq[i] = 'a';
        }
        if (o.latency() <= static_cast<SimTime>(slo)) {
          result.slo_met++;
          ts.slo_met++;
        }
      });
    });
  }
  sim->event_sim()->Run();
  return result;
}

}  // namespace apuama::workload

#include "apuama/result_composer.h"

#include <chrono>
#include <utility>

#include "apuama/svp_rewriter.h"
#include "memdb/memdb.h"
#include "sql/parser.h"

namespace apuama {

namespace {

Result<engine::QueryResult> MergeAll(
    const std::vector<const engine::QueryResult*>& partials,
    std::shared_ptr<const MergeProgram> program, CompositionStats* stats) {
  PartialMerger merger(std::move(program));
  for (const auto* p : partials) {
    APUAMA_RETURN_NOT_OK(merger.Feed(*p));
  }
  return merger.Finish(stats);
}

}  // namespace

Result<engine::QueryResult> ResultComposer::Compose(
    const std::vector<const engine::QueryResult*>& partials,
    const std::string& composition_sql, CompositionStats* stats) {
  if (partials.empty()) {
    return Status::InvalidArgument("no partial results to load");
  }
  auto parsed = sql::ParseSelect(composition_sql);
  if (parsed.ok()) {
    auto program = MergeProgram::Compile(std::move(parsed).value());
    if (program.ok()) {
      return MergeAll(partials, std::move(program).value(), stats);
    }
  }
  return ComposeViaMemDb(partials, composition_sql, stats);
}

Result<engine::QueryResult> ResultComposer::ComposeWithPlan(
    const std::vector<const engine::QueryResult*>& partials,
    const SvpPlan& plan, CompositionStats* stats) {
  if (partials.empty()) {
    return Status::InvalidArgument("no partial results to load");
  }
  if (plan.merge_program() != nullptr) {
    return MergeAll(partials, plan.merge_program(), stats);
  }
  return ComposeViaMemDb(partials, plan.composition_sql(), stats);
}

Result<engine::QueryResult> ResultComposer::ComposeViaMemDb(
    const std::vector<const engine::QueryResult*>& partials,
    const std::string& composition_sql, CompositionStats* stats) {
  // A fresh MemDb per composition: no cross-query lock, and the
  // partials table dies with it.
  memdb::MemDb memdb;
  APUAMA_RETURN_NOT_OK(memdb.LoadPartials(kPartialsTable, partials));
  auto result = memdb.Execute(composition_sql);
  if (stats != nullptr && result.ok()) {
    stats->partial_rows = 0;
    for (const auto* p : partials) stats->partial_rows += p->rows.size();
    stats->output_rows = result->rows.size();
    stats->used_fast_path = false;
    stats->compose_exec = result->stats;
  }
  return result;
}

StreamingComposition::StreamingComposition(
    std::shared_ptr<const MergeProgram> program, std::string fallback_sql)
    : fallback_sql_(std::move(fallback_sql)) {
  if (program != nullptr) merger_.emplace(std::move(program));
}

Status StreamingComposition::Add(engine::QueryResult partial) {
  combined_ += partial.stats;
  if (merger_.has_value()) {
    auto t0 = std::chrono::steady_clock::now();
    Status s = merger_->Feed(partial);
    auto t1 = std::chrono::steady_clock::now();
    compose_micros_ += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count());
    return s;
  }
  buffered_.push_back(std::move(partial));
  return Status::OK();
}

Result<engine::QueryResult> StreamingComposition::Finish(
    CompositionStats* stats) {
  auto t0 = std::chrono::steady_clock::now();
  Result<engine::QueryResult> result = [&]() -> Result<engine::QueryResult> {
    if (merger_.has_value()) return merger_->Finish(stats);
    std::vector<const engine::QueryResult*> ptrs;
    ptrs.reserve(buffered_.size());
    for (const auto& p : buffered_) ptrs.push_back(&p);
    ResultComposer composer;
    return composer.ComposeViaMemDb(ptrs, fallback_sql_, stats);
  }();
  auto t1 = std::chrono::steady_clock::now();
  compose_micros_ += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count());
  if (result.ok()) {
    engine::ExecStats out = combined_;
    if (stats != nullptr) out.cpu_ops += stats->compose_exec.cpu_ops;
    out.tuples_output = result->rows.size();
    result->stats = out;
  }
  return result;
}

}  // namespace apuama

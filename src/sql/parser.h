// Recursive-descent parser for the SQL dialect (see ast.h).
//
// The dialect covers what the TPC-H subset used in the paper needs:
// SELECT with comma-joins and INNER JOIN ... ON, WHERE with
// AND/OR/NOT, comparisons, BETWEEN, IN (list or subquery),
// (NOT) EXISTS correlated subqueries, LIKE, CASE WHEN, arithmetic,
// date and interval literals, aggregates, GROUP BY / HAVING /
// ORDER BY / LIMIT; plus INSERT / DELETE / UPDATE / CREATE TABLE /
// CREATE [CLUSTERED] INDEX / DROP TABLE / SET / BEGIN / COMMIT /
// ROLLBACK.
#ifndef APUAMA_SQL_PARSER_H_
#define APUAMA_SQL_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"

namespace apuama::sql {

/// Parses a single SQL statement (a trailing ';' is allowed).
Result<StmtPtr> Parse(const std::string& sql);

/// Parses a statement known to be a SELECT; error otherwise.
Result<std::unique_ptr<SelectStmt>> ParseSelect(const std::string& sql);

/// Splits a script on top-level ';' and parses each statement.
Result<std::vector<StmtPtr>> ParseScript(const std::string& script);

}  // namespace apuama::sql

#endif  // APUAMA_SQL_PARSER_H_

// Cost model: ExecStats -> virtual service time.
//
// Calibrated to 2005-era commodity nodes (the paper's 2.2 GHz
// Opterons with local IDE disks): a random 8 KiB page read costs
// milliseconds, a cached page microseconds, and interpreted tuple
// work microseconds. Only the *ratios* matter for curve shapes.
#ifndef APUAMA_SIM_COST_MODEL_H_
#define APUAMA_SIM_COST_MODEL_H_

#include "common/sim_time.h"
#include "engine/exec_stats.h"

namespace apuama::sim {

/// Rolling cardinality feedback: what executed statements actually
/// observed, folded back into planning. The executor reports through
/// ExecStats how many row-slots moved through vectorized kernels
/// (scan predicates, dictionary-code compares, the vectorized join
/// probe) and how many driver rows survived the semi-join partition
/// filter; the cluster planner reads the derived rates to charge
/// slice-granular ops for columnar-eligible plans instead of assuming
/// every tuple costs a full row-wise op.
struct CardinalityFeedback {
  uint64_t tuples = 0;         ///< tuples scanned by observed statements
  uint64_t vec_slots = 0;      ///< row-slots through vectorized kernels
  uint64_t probe_candidates = 0;  ///< driver rows reaching the join filter
  uint64_t probe_survivors = 0;   ///< rows that went on to probe a chain

  void Observe(const engine::ExecStats& s) {
    tuples += s.tuples_scanned;
    vec_slots += s.vectorized_rows + s.dict_hits + s.probe_vectorized_rows;
    probe_candidates += s.join_probe_rows + s.filter_skipped_rows;
    probe_survivors += s.join_probe_rows;
  }

  bool HasSamples() const { return tuples > 0; }

  /// Fraction of scanned tuples whose work ran in vectorized kernels,
  /// clamped to [0, 1] (a tuple can pass through several kernels).
  double VectorizedFraction() const {
    if (tuples == 0) return 0.0;
    const double f = static_cast<double>(vec_slots) /
                     static_cast<double>(tuples);
    return f > 1.0 ? 1.0 : f;
  }

  /// Fraction of probe candidates that survived the semi-join filter
  /// (1.0 before any join has been observed: assume no filtering).
  double FilterSurvival() const {
    if (probe_candidates == 0) return 1.0;
    return static_cast<double>(probe_survivors) /
           static_cast<double>(probe_candidates);
  }
};

struct CostModel {
  /// Reading a page from disk (buffer-pool miss).
  SimTime disk_page_us = 800;
  /// Reading a page already resident in the buffer pool.
  SimTime cache_page_us = 15;
  /// One abstract CPU operation (expression eval, hash probe, ...).
  SimTime cpu_op_us = 2;
  /// Fixed per-request network + protocol cost (client->controller->
  /// node and back). Applied once per statement sent to a node.
  SimTime message_us = 300;
  /// Extra middleware cost per row shipped back to the controller
  /// (result serialization — matters for large partials, e.g. Q3).
  SimTime row_transfer_us = 2;
  /// Controller-side scheduler overhead for a write: total-order
  /// enforcement grows with the number of replicas notified.
  SimTime write_sync_per_node_us = 2000;
  /// Exchange link throughput between two nodes, in bytes per virtual
  /// microsecond (100 ≈ 100 MB/s, 2005-era switched Ethernet). The
  /// exchange operator's per-byte network charge divides by this.
  SimTime network_bytes_per_us = 100;

  /// Service time of one statement executed at a node. CPU work done
  /// inside the morsel-parallel region shrinks by the intra-node
  /// thread count (critical-path charging); planning, merge, and
  /// finalization stay sequential. Join build and probe work
  /// (join_build_rows / join_probe_rows) is counted into
  /// cpu_ops_parallel by the morsel join pipeline, so ClusterSim
  /// figures reflect intra-node join speedup — and semi-join filter
  /// pushdown shows up as fewer probe ops, not just fewer tuples.
  /// Vectorized kernels charge one op per 8-row slice into BOTH
  /// cpu_ops and cpu_ops_parallel (they run inside morsel workers),
  /// so the columnar path's saving lands on this same critical path:
  /// fewer ops per row AND divided by the thread width. Only the
  /// adaptive merge's central strategy keeps its fold sequential.
  SimTime StatementTime(const engine::ExecStats& s) const {
    const uint64_t par =
        s.cpu_ops_parallel < s.cpu_ops ? s.cpu_ops_parallel : s.cpu_ops;
    const uint64_t seq = s.cpu_ops - par;
    const uint64_t width = s.exec_threads == 0 ? 1 : s.exec_threads;
    const uint64_t charged_cpu = seq + (par + width - 1) / width;
    return message_us +
           static_cast<SimTime>(s.pages_disk) * disk_page_us +
           static_cast<SimTime>(s.pages_cache) * cache_page_us +
           static_cast<SimTime>(charged_cpu) * cpu_op_us +
           static_cast<SimTime>(s.tuples_output) * row_transfer_us;
  }

  /// Controller-side cost of composing partial results: loading
  /// `partial_rows` into the in-memory DB plus the composition query.
  SimTime CompositionTime(const engine::ExecStats& compose_stats,
                          uint64_t partial_rows) const {
    return static_cast<SimTime>(partial_rows) * row_transfer_us +
           static_cast<SimTime>(compose_stats.cpu_ops) * cpu_op_us;
  }

  /// Scheduler overhead of broadcasting one write to `nodes` replicas.
  SimTime WriteBroadcastOverhead(int nodes) const {
    return static_cast<SimTime>(nodes) * write_sync_per_node_us;
  }

  /// Time to ship `bytes` of tuples between two nodes through the
  /// exchange operator: one message round plus the per-byte transfer
  /// cost. Zero bytes means no exchange happened and costs nothing.
  SimTime ExchangeTransferTime(uint64_t bytes) const {
    if (bytes == 0) return 0;
    const SimTime bw = network_bytes_per_us <= 0 ? 1 : network_bytes_per_us;
    return message_us + static_cast<SimTime>(bytes) / bw;
  }

  /// Rows one vectorized cpu op covers (engine::kVecLane; mirrored
  /// here so the sim does not pull in the executor headers).
  static constexpr double kSliceRows = 8.0;

  /// Estimated cpu ops to process `tuples` rows under the observed
  /// pipeline mix: the vectorized fraction is charged one op per
  /// kSliceRows-row slice, the rest one op per row. This is the
  /// planning-side mirror of how the executor actually charges
  /// cpu_ops, so estimates track the real pipeline instead of
  /// assuming row-at-a-time everywhere.
  double EstimatedScanOps(uint64_t tuples,
                          const CardinalityFeedback& fb) const {
    const double frac = fb.VectorizedFraction();
    const double t = static_cast<double>(tuples);
    return t * (1.0 - frac) + t * frac / kSliceRows;
  }

  /// Relative per-tuple cpu cost under the observed mix, in
  /// [1/kSliceRows, 1]. 1.0 = fully row-wise; 1/kSliceRows = fully
  /// vectorized.
  double PerTupleOpScale(const CardinalityFeedback& fb) const {
    const double frac = fb.VectorizedFraction();
    return (1.0 - frac) + frac / kSliceRows;
  }

  /// AVP initial-divisor adaptation: the scheduler's first chunks are
  /// sized domain/(nodes*divisor). When feedback shows the pipeline
  /// runs vectorized (cheap per key) and the semi-join filter passes
  /// few probe candidates, per-chunk work shrinks, so larger initial
  /// chunks (a smaller divisor) reach steady state with less per-chunk
  /// message overhead. Deterministic: pure arithmetic on the observed
  /// counters, floor 2 so adaptivity never degenerates to one chunk.
  int AdaptedAvpDivisor(int base_divisor,
                        const CardinalityFeedback& fb) const {
    if (!fb.HasSamples()) return base_divisor;
    const double scale = PerTupleOpScale(fb) * FilterScale(fb);
    const int adapted =
        static_cast<int>(static_cast<double>(base_divisor) * scale + 0.5);
    return adapted < 2 ? 2 : adapted;
  }

 private:
  /// Survival folded gently: even a very selective filter leaves the
  /// scan cost of a chunk intact, so weight it half.
  static double FilterScale(const CardinalityFeedback& fb) {
    return 0.5 + 0.5 * fb.FilterSurvival();
  }
};

}  // namespace apuama::sim

#endif  // APUAMA_SIM_COST_MODEL_H_

#include "apuama/exchange/exchange.h"

#include <algorithm>
#include <limits>
#include <mutex>

#include "common/string_util.h"
#include "engine/database.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "types/schema.h"

namespace apuama::exchange {

namespace {

constexpr int64_t kMinKey = std::numeric_limits<int64_t>::min();
constexpr int64_t kMaxKey = std::numeric_limits<int64_t>::max();

bool Contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

/// Fragments of `spec` that can hold keys of the inclusive [lo, hi].
std::vector<int> NeededFragments(const FragmentationSpec& spec, int64_t lo,
                                 int64_t hi) {
  std::vector<int> out;
  for (int f = 0; f < spec.fragments; ++f) {
    if (spec.Intersects(f, lo, hi)) out.push_back(f);
  }
  return out;
}

/// True when `node` hosts every listed fragment of `spec`.
bool NodeHostsAll(const FragmentationSpec& spec,
                  const std::vector<int>& fragments, int node) {
  for (int f : fragments) {
    if (!Contains(spec.HostsOf(f), node)) return false;
  }
  return true;
}

}  // namespace

Strategy ParseStrategy(const std::string& name) {
  const std::string lowered = ToLower(name);
  if (lowered == "shuffle") return Strategy::kShuffle;
  if (lowered == "broadcast") return Strategy::kBroadcast;
  return Strategy::kAuto;
}

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kShuffle: return "shuffle";
    case Strategy::kBroadcast: return "broadcast";
    case Strategy::kAuto: break;
  }
  return "auto";
}

ExchangeOperator::ExchangeOperator(cjdbc::ReplicaSet* replicas, uint64_t seq,
                                   Strategy strategy)
    : replicas_(replicas), seq_(seq), strategy_(strategy) {}

ExchangeOperator::~ExchangeOperator() { Cleanup(); }

Result<std::vector<Row>> ExchangeOperator::FetchSlice(
    const FragmentationSpec& spec, int64_t lo, int64_t hi,
    const std::vector<int>& alive, int compute_node) {
  std::vector<Row> out;
  if (lo >= hi) return out;
  for (int f = 0; f < spec.fragments; ++f) {
    if (!spec.Intersects(f, lo, hi - 1)) continue;
    int host = -1;
    for (int h : spec.HostsOf(f)) {
      if (Contains(alive, h)) {
        host = h;
        break;
      }
    }
    if (host < 0) {
      return Status::Unavailable("no available host for fragment of " +
                                 spec.table);
    }
    // Clamp to the fragment's interior bounds; the edge fragments are
    // open-ended (see FragmentationSpec::bounds).
    int64_t f_lo = lo;
    int64_t f_hi = hi;
    if (f > 0) f_lo = std::max(f_lo, spec.bounds[static_cast<size_t>(f)]);
    if (f < spec.fragments - 1) {
      f_hi = std::min(f_hi, spec.bounds[static_cast<size_t>(f) + 1]);
    }
    if (f_lo >= f_hi) continue;
    std::lock_guard<std::mutex> lock(*replicas_->node_mutex(host));
    auto table = replicas_->node(host)->catalog()->GetTable(spec.table);
    if (!table.ok()) return table.status();
    const Value lov = Value::Int(f_lo);
    const Value hiv = Value::Int(f_hi);
    auto [begin, end] = (*table)->ClusteredRange(&lov, true, &hiv, false);
    uint64_t slice_bytes = 0;
    out.reserve(out.size() + (end - begin));
    for (size_t i = begin; i < end; ++i) {
      const Row& r = (*table)->row(i);
      slice_bytes += RowByteSize(r);
      out.push_back(r);
    }
    if (host != compute_node) bytes_shipped_ += slice_bytes;
  }
  return out;
}

Status ExchangeOperator::Materialize(int node,
                                     const std::string& source_table,
                                     const std::string& temp_name,
                                     std::vector<Row> rows) {
  std::lock_guard<std::mutex> lock(*replicas_->node_mutex(node));
  engine::Database* db = replicas_->node(node);
  auto src = db->catalog()->GetTable(source_table);
  if (!src.ok()) return src.status();
  auto created = db->catalog()->CreateTable(temp_name, (*src)->schema());
  if (!created.ok()) return created.status();
  storage::Table* t = *created;
  temps_.emplace_back(node, temp_name);
  // Clustered key first, then BulkLoad: the stable sort leaves the
  // already-heap-ordered rows untouched (bit-identity with a scan of
  // the replicated original).
  std::vector<int> key = (*src)->clustered_key();
  APUAMA_RETURN_NOT_OK(t->SetClusteredKey(std::move(key)));
  APUAMA_RETURN_NOT_OK(t->BulkLoad(std::move(rows)));
  // Mirror secondary indexes so the node planner has the same access
  // paths available under forced-index execution.
  for (const auto& idx : (*src)->indexes()) {
    const std::string& col =
        (*src)->schema().column(static_cast<size_t>(idx->column_idx())).name;
    APUAMA_RETURN_NOT_OK(t->CreateIndex(temp_name + "_" + idx->name(), col));
  }
  return Status::OK();
}

void ExchangeOperator::Cleanup() {
  for (const auto& [node, name] : temps_) {
    std::lock_guard<std::mutex> lock(*replicas_->node_mutex(node));
    engine::Database* db = replicas_->node(node);
    if (auto t = db->catalog()->GetTable(name); t.ok()) {
      db->column_store()->Evict((*t)->id());
    }
    Status dropped = db->catalog()->DropTable(name);
    (void)dropped;  // a vanished temp is already what we want
  }
  temps_.clear();
}

Result<std::vector<Assignment>> ExchangeOperator::Prepare(
    const std::vector<std::pair<int64_t, int64_t>>& intervals,
    const std::vector<const FragmentationSpec*>& specs,
    const std::vector<int>& alive, const std::vector<int>& preferred) {
  std::vector<Assignment> out(intervals.size());
  if (specs.empty()) {
    for (size_t i = 0; i < intervals.size(); ++i) {
      out[i].node = preferred[i];
      out[i].alternates = alive;
    }
    return out;
  }

  // Size proxy for the broadcast-small decision: the table's row
  // count on the first alive node (full replicas were loaded before
  // fragmentation, so relative sizes are representative).
  size_t largest = 0;
  {
    size_t best_rows = 0;
    for (size_t s = 0; s < specs.size(); ++s) {
      size_t rows = 0;
      if (!alive.empty()) {
        std::lock_guard<std::mutex> lock(*replicas_->node_mutex(alive[0]));
        auto t = replicas_->node(alive[0])->catalog()->GetTable(
            specs[s]->table);
        if (t.ok()) rows = (*t)->num_rows();
      }
      if (rows >= best_rows) {
        best_rows = rows;
        largest = s;
      }
    }
  }

  // Whole-table broadcast temps already built, per (node, spec idx).
  std::vector<std::pair<std::pair<int, size_t>, std::string>> bcast_temps;
  auto broadcast_temp = [&](int node, size_t s) -> Result<std::string> {
    for (const auto& [key, name] : bcast_temps) {
      if (key.first == node && key.second == s) return name;
    }
    const std::string name = "__exg_" + std::to_string(seq_) + "_b" +
                             std::to_string(node) + "_" + specs[s]->table;
    APUAMA_ASSIGN_OR_RETURN(
        std::vector<Row> rows,
        FetchSlice(*specs[s], kMinKey, kMaxKey, alive, node));
    APUAMA_RETURN_NOT_OK(
        Materialize(node, specs[s]->table, name, std::move(rows)));
    bcast_temps.push_back({{node, s}, name});
    ++broadcasts_;
    return name;
  };

  for (size_t i = 0; i < intervals.size(); ++i) {
    const auto [lo, hi] = intervals[i];
    std::vector<std::vector<int>> needed(specs.size());
    bool empty_interval = lo >= hi;
    if (!empty_interval) {
      for (size_t s = 0; s < specs.size(); ++s) {
        needed[s] = NeededFragments(*specs[s], lo, hi - 1);
      }
    }

    // 1. Local: a node hosting every needed fragment of every table
    // runs the interval with zero movement. The co-partitioned
    // preset always resolves here, to the baseline node.
    std::vector<int> candidates;
    for (int c : alive) {
      bool covers = true;
      for (size_t s = 0; s < specs.size() && covers; ++s) {
        covers = NodeHostsAll(*specs[s], needed[s], c);
      }
      if (covers) candidates.push_back(c);
    }
    if (!candidates.empty()) {
      out[i].node = Contains(candidates, preferred[i]) ? preferred[i]
                                                       : candidates[0];
      out[i].alternates = candidates;
      continue;
    }

    // 2. Broadcast-small-build: run where the largest table's needed
    // fragments live and ship the smaller tables there whole (reused
    // across this query's intervals on the same node).
    if (strategy_ != Strategy::kShuffle && specs.size() > 1) {
      std::vector<int> l_candidates;
      for (int c : alive) {
        if (NodeHostsAll(*specs[largest], needed[largest], c)) {
          l_candidates.push_back(c);
        }
      }
      if (!l_candidates.empty()) {
        const int node = Contains(l_candidates, preferred[i])
                             ? preferred[i]
                             : l_candidates[0];
        Assignment a;
        a.node = node;
        for (size_t s = 0; s < specs.size(); ++s) {
          if (s == largest) continue;
          auto name = broadcast_temp(node, s);
          if (!name.ok()) return name.status();
          a.table_map.emplace_back(specs[s]->table, std::move(name).value());
        }
        out[i] = std::move(a);
        continue;
      }
    }

    // 3. Shuffle: ship every fragmented table's slice of this
    // interval to the baseline node.
    const int node = preferred[i];
    Assignment a;
    a.node = node;
    for (size_t s = 0; s < specs.size(); ++s) {
      const std::string name = "__exg_" + std::to_string(seq_) + "_i" +
                               std::to_string(i) + "_" + specs[s]->table;
      APUAMA_ASSIGN_OR_RETURN(std::vector<Row> rows,
                              FetchSlice(*specs[s], lo, hi, alive, node));
      APUAMA_RETURN_NOT_OK(
          Materialize(node, specs[s]->table, name, std::move(rows)));
      a.table_map.emplace_back(specs[s]->table, name);
    }
    ++shuffles_;
    out[i] = std::move(a);
  }
  return out;
}

Result<Assignment> ExchangeOperator::PrepareWholeTables(
    const std::vector<const FragmentationSpec*>& specs,
    const std::vector<int>& alive, int fallback_node) {
  // A node hosting every fragment of every table serves the query
  // directly (replica factor >= fragments/nodes makes this common).
  std::vector<int> ordered;
  if (Contains(alive, fallback_node)) ordered.push_back(fallback_node);
  for (int c : alive) {
    if (c != fallback_node) ordered.push_back(c);
  }
  for (int c : ordered) {
    bool covers = true;
    for (const auto* spec : specs) {
      std::vector<int> all(static_cast<size_t>(spec->fragments));
      for (int f = 0; f < spec->fragments; ++f) all[static_cast<size_t>(f)] = f;
      if (!NodeHostsAll(*spec, all, c)) {
        covers = false;
        break;
      }
    }
    if (covers) {
      Assignment a;
      a.node = c;
      a.alternates = ordered;
      return a;
    }
  }
  if (ordered.empty()) return Status::Unavailable("no node available");
  Assignment a;
  a.node = ordered[0];
  for (const auto* spec : specs) {
    const std::string name =
        "__exg_" + std::to_string(seq_) + "_w_" + spec->table;
    APUAMA_ASSIGN_OR_RETURN(
        std::vector<Row> rows,
        FetchSlice(*spec, kMinKey, kMaxKey, alive, a.node));
    APUAMA_RETURN_NOT_OK(
        Materialize(a.node, spec->table, name, std::move(rows)));
    a.table_map.emplace_back(spec->table, name);
  }
  ++shuffles_;
  return a;
}

}  // namespace apuama::exchange

#include "sql/unparse.h"

#include <cassert>

#include "common/string_util.h"

namespace apuama::sql {

namespace {

// Parenthesization is conservative: any non-leaf operand of a binary
// operator is wrapped. The output is for machine consumption (backend
// DBMSs), not pretty-printing.
bool IsLeaf(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
    case ExprKind::kFuncCall:
    case ExprKind::kStar:
    case ExprKind::kInterval:
    case ExprKind::kScalarSubquery:  // renders its own parentheses
      return true;
    default:
      return false;
  }
}

std::string Wrap(const Expr& e) {
  std::string s = UnparseExpr(e);
  if (IsLeaf(e)) return s;
  return "(" + s + ")";
}

}  // namespace

std::string UnparseExpr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal.ToSqlLiteral();
    case ExprKind::kColumnRef:
      if (e.table_qualifier.empty()) return e.column_name;
      return e.table_qualifier + "." + e.column_name;
    case ExprKind::kUnary:
      if (e.unary_op == UnaryOp::kNegate) return "-" + Wrap(*e.children[0]);
      return "NOT " + Wrap(*e.children[0]);
    case ExprKind::kBinary:
      return Wrap(*e.children[0]) + " " + BinaryOpName(e.binary_op) + " " +
             Wrap(*e.children[1]);
    case ExprKind::kBetween:
      return Wrap(*e.children[0]) + (e.negated ? " NOT" : "") + " BETWEEN " +
             Wrap(*e.children[1]) + " AND " + Wrap(*e.children[2]);
    case ExprKind::kInList: {
      std::vector<std::string> items;
      for (size_t i = 1; i < e.children.size(); ++i) {
        items.push_back(UnparseExpr(*e.children[i]));
      }
      return Wrap(*e.children[0]) + (e.negated ? " NOT" : "") + " IN (" +
             Join(items, ", ") + ")";
    }
    case ExprKind::kInSubquery:
      return Wrap(*e.children[0]) + (e.negated ? " NOT" : "") + " IN (" +
             UnparseSelect(*e.subquery) + ")";
    case ExprKind::kExists:
      return std::string(e.negated ? "NOT " : "") + "EXISTS (" +
             UnparseSelect(*e.subquery) + ")";
    case ExprKind::kLike: {
      // Re-escape quotes in the pattern.
      std::string pat = Value::Str(e.like_pattern).ToSqlLiteral();
      return Wrap(*e.children[0]) + (e.negated ? " NOT" : "") + " LIKE " +
             pat;
    }
    case ExprKind::kIsNull:
      return Wrap(*e.children[0]) + " IS " + (e.negated ? "NOT " : "") +
             "NULL";
    case ExprKind::kCase: {
      std::string out = "CASE";
      for (size_t i = 0; i + 1 < e.children.size(); i += 2) {
        out += " WHEN " + UnparseExpr(*e.children[i]) + " THEN " +
               UnparseExpr(*e.children[i + 1]);
      }
      if (e.case_else) out += " ELSE " + UnparseExpr(*e.case_else);
      out += " END";
      return out;
    }
    case ExprKind::kFuncCall: {
      if (e.star_arg) return e.func_name + "(*)";
      std::vector<std::string> args;
      for (const auto& c : e.children) args.push_back(UnparseExpr(*c));
      return e.func_name + "(" + std::string(e.distinct ? "DISTINCT " : "") +
             Join(args, ", ") + ")";
    }
    case ExprKind::kStar:
      return "*";
    case ExprKind::kScalarSubquery:
      return "(" + UnparseSelect(*e.subquery) + ")";
    case ExprKind::kInterval: {
      const char* unit = e.interval_unit == Expr::IntervalUnit::kDay ? "DAY"
                         : e.interval_unit == Expr::IntervalUnit::kMonth
                             ? "MONTH"
                             : "YEAR";
      return StrFormat("INTERVAL '%lld' %s",
                       static_cast<long long>(e.interval_count), unit);
    }
  }
  return "?";
}

std::string UnparseSelect(const SelectStmt& s) {
  std::string out = s.approx ? "APPROX SELECT " : "SELECT ";
  if (s.distinct) out += "DISTINCT ";
  std::vector<std::string> items;
  for (const auto& it : s.items) {
    if (it.star) {
      items.push_back("*");
      continue;
    }
    std::string t = UnparseExpr(*it.expr);
    if (!it.alias.empty()) t += " AS " + it.alias;
    items.push_back(std::move(t));
  }
  out += Join(items, ", ");
  if (!s.from.empty()) {
    out += " FROM ";
    std::vector<std::string> refs;
    for (const auto& r : s.from) {
      std::string t = r.table;
      if (!r.alias.empty()) t += " " + r.alias;
      refs.push_back(std::move(t));
    }
    out += Join(refs, ", ");
  }
  if (s.where) out += " WHERE " + UnparseExpr(*s.where);
  if (!s.group_by.empty()) {
    std::vector<std::string> gs;
    for (const auto& g : s.group_by) gs.push_back(UnparseExpr(*g));
    out += " GROUP BY " + Join(gs, ", ");
  }
  if (s.having) out += " HAVING " + UnparseExpr(*s.having);
  if (!s.order_by.empty()) {
    std::vector<std::string> os;
    for (const auto& o : s.order_by) {
      std::string t = UnparseExpr(*o.expr);
      if (o.desc) t += " DESC";
      os.push_back(std::move(t));
    }
    out += " ORDER BY " + Join(os, ", ");
  }
  if (s.limit >= 0) {
    out += StrFormat(" LIMIT %lld", static_cast<long long>(s.limit));
  }
  if (s.offset > 0) {
    out += StrFormat(" OFFSET %lld", static_cast<long long>(s.offset));
  }
  return out;
}

std::string UnparseStmt(const Stmt& s) {
  switch (s.kind()) {
    case StmtKind::kSelect:
      return UnparseSelect(static_cast<const SelectStmt&>(s));
    case StmtKind::kInsert: {
      const auto& st = static_cast<const InsertStmt&>(s);
      std::string out = "INSERT INTO " + st.table;
      if (!st.columns.empty()) out += " (" + Join(st.columns, ", ") + ")";
      out += " VALUES ";
      std::vector<std::string> rows;
      for (const auto& row : st.rows) {
        std::vector<std::string> vals;
        for (const auto& v : row) vals.push_back(UnparseExpr(*v));
        rows.push_back("(" + Join(vals, ", ") + ")");
      }
      out += Join(rows, ", ");
      return out;
    }
    case StmtKind::kDelete: {
      const auto& st = static_cast<const DeleteStmt&>(s);
      std::string out = "DELETE FROM " + st.table;
      if (st.where) out += " WHERE " + UnparseExpr(*st.where);
      return out;
    }
    case StmtKind::kUpdate: {
      const auto& st = static_cast<const UpdateStmt&>(s);
      std::string out = "UPDATE " + st.table + " SET ";
      std::vector<std::string> sets;
      for (const auto& [col, val] : st.assignments) {
        sets.push_back(col + " = " + UnparseExpr(*val));
      }
      out += Join(sets, ", ");
      if (st.where) out += " WHERE " + UnparseExpr(*st.where);
      return out;
    }
    case StmtKind::kCreateTable: {
      const auto& st = static_cast<const CreateTableStmt&>(s);
      std::vector<std::string> cols;
      for (const auto& c : st.columns) {
        std::string t = c.name;
        switch (c.type) {
          case ValueType::kInt64:
            t += " BIGINT";
            break;
          case ValueType::kDouble:
            t += " DOUBLE";
            break;
          case ValueType::kString:
            t += " TEXT";
            break;
          case ValueType::kDate:
            t += " DATE";
            break;
          default:
            t += " TEXT";
        }
        if (c.not_null && !c.primary_key) t += " NOT NULL";
        cols.push_back(std::move(t));
      }
      if (!st.primary_key.empty()) {
        cols.push_back("PRIMARY KEY (" + Join(st.primary_key, ", ") + ")");
      }
      return "CREATE TABLE " + st.table + " (" + Join(cols, ", ") + ")";
    }
    case StmtKind::kCreateIndex: {
      const auto& st = static_cast<const CreateIndexStmt&>(s);
      return std::string("CREATE ") + (st.clustered ? "CLUSTERED " : "") +
             "INDEX " + st.index_name + " ON " + st.table + " (" +
             Join(st.columns, ", ") + ")";
    }
    case StmtKind::kDropTable:
      return "DROP TABLE " + static_cast<const DropTableStmt&>(s).table;
    case StmtKind::kCreateSample: {
      const auto& st = static_cast<const CreateSampleStmt&>(s);
      std::string out = "CREATE SAMPLE ";
      if (!st.sample_name.empty()) out += st.sample_name + " ON ";
      return out + st.table + StrFormat(" RATIO %g", st.ratio);
    }
    case StmtKind::kDropSample: {
      const auto& st = static_cast<const DropSampleStmt&>(s);
      std::string out = "DROP SAMPLE ";
      if (!st.sample_name.empty()) out += st.sample_name + " ON ";
      return out + st.table;
    }
    case StmtKind::kSet: {
      const auto& st = static_cast<const SetStmt&>(s);
      return "SET " + st.name + " = " + st.value;
    }
    case StmtKind::kExplain: {
      const auto& st = static_cast<const ExplainStmt&>(s);
      return std::string("EXPLAIN ") + (st.analyze ? "ANALYZE " : "") +
             UnparseSelect(*st.query);
    }
    case StmtKind::kBegin:
      return "BEGIN";
    case StmtKind::kCommit:
      return "COMMIT";
    case StmtKind::kRollback:
      return "ROLLBACK";
  }
  return "?";
}

}  // namespace apuama::sql

#include "sql/ast.h"

namespace apuama::sql {

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNotEq:
    case BinaryOp::kLt:
    case BinaryOp::kLtEq:
    case BinaryOp::kGt:
    case BinaryOp::kGtEq:
      return true;
    default:
      return false;
  }
}

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNotEq:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLtEq:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGtEq:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

ExprPtr Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->literal = literal;
  out->table_qualifier = table_qualifier;
  out->column_name = column_name;
  out->unary_op = unary_op;
  out->binary_op = binary_op;
  out->func_name = func_name;
  out->star_arg = star_arg;
  out->distinct = distinct;
  out->interval_count = interval_count;
  out->interval_unit = interval_unit;
  out->like_pattern = like_pattern;
  out->negated = negated;
  if (case_else) out->case_else = case_else->Clone();
  out->children.reserve(children.size());
  for (const auto& c : children) out->children.push_back(c->Clone());
  if (subquery) out->subquery = subquery->Clone();
  return out;
}

std::unique_ptr<SelectStmt> SelectStmt::Clone() const {
  auto out = std::make_unique<SelectStmt>();
  out->approx = approx;
  out->distinct = distinct;
  out->items.reserve(items.size());
  for (const auto& it : items) {
    SelectItem si;
    si.star = it.star;
    si.alias = it.alias;
    if (it.expr) si.expr = it.expr->Clone();
    out->items.push_back(std::move(si));
  }
  out->from = from;
  if (where) out->where = where->Clone();
  for (const auto& g : group_by) out->group_by.push_back(g->Clone());
  if (having) out->having = having->Clone();
  for (const auto& o : order_by) {
    OrderItem oi;
    oi.desc = o.desc;
    oi.expr = o.expr->Clone();
    out->order_by.push_back(std::move(oi));
  }
  out->limit = limit;
  out->offset = offset;
  return out;
}

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string qualifier, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table_qualifier = std::move(qualifier);
  e->column_name = std::move(column);
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeBetween(ExprPtr x, ExprPtr lo, ExprPtr hi, bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBetween;
  e->negated = negated;
  e->children.push_back(std::move(x));
  e->children.push_back(std::move(lo));
  e->children.push_back(std::move(hi));
  return e;
}

ExprPtr MakeFuncCall(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFuncCall;
  e->func_name = std::move(name);
  e->children = std::move(args);
  return e;
}

ExprPtr MakeCountStar() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFuncCall;
  e->func_name = "count";
  e->star_arg = true;
  return e;
}

ExprPtr MakeStar() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

ExprPtr MakeExists(std::unique_ptr<SelectStmt> sub, bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kExists;
  e->negated = negated;
  e->subquery = std::move(sub);
  return e;
}

ExprPtr AndCombine(ExprPtr a, ExprPtr b) {
  if (!a) return b;
  if (!b) return a;
  return MakeBinary(BinaryOp::kAnd, std::move(a), std::move(b));
}

}  // namespace apuama::sql

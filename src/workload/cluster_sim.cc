#include "workload/cluster_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "apuama/share/query_fingerprint.h"
#include "common/string_util.h"
#include "engine/database.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sql/analyzer.h"
#include "sql/parser.h"
#include "storage/catalog.h"

namespace apuama::workload {

using engine::QueryResult;

namespace {

/// Bytes one shipped fact row occupies on the exchange wire
/// (serialized key + payload columns, order of magnitude).
constexpr uint64_t kExchangeRowBytes = 64;

// Modeled relative CI half-width of a full scramble at ratio 1.0 —
// the anchor of the sim's deterministic early-exit rule (the real
// stack computes the width from per-group moments instead).
constexpr double kSimFullScrambleHalfWidth = 0.005;

/// The int64 key a top-level equality conjunct pins `key_column` to,
/// if any (`col = lit` or `lit = col`) — the sim mirror of the
/// engine's write router.
std::optional<int64_t> EqualityKey(const sql::Expr* where,
                                   const std::string& key_column) {
  for (const sql::Expr* c : sql::SplitConjuncts(where)) {
    if (c == nullptr || c->kind != sql::ExprKind::kBinary ||
        c->binary_op != sql::BinaryOp::kEq) {
      continue;
    }
    const sql::Expr* lhs = c->children[0].get();
    const sql::Expr* rhs = c->children[1].get();
    if (lhs->kind == sql::ExprKind::kLiteral) std::swap(lhs, rhs);
    if (lhs->kind != sql::ExprKind::kColumnRef ||
        rhs->kind != sql::ExprKind::kLiteral ||
        rhs->literal.type() != ValueType::kInt64) {
      continue;
    }
    if (ToLower(lhs->column_name) == key_column) {
      return rhs->literal.int_val();
    }
  }
  return std::nullopt;
}

/// Fraction of the key span [lo, hi) whose owning fragments do NOT
/// host `node` — the rows the exchange operator must ship to serve
/// the interval there. Edge fragments are open-ended, like routing.
double NonLocalFraction(const FragmentationSpec& spec, int node,
                        int64_t lo, int64_t hi) {
  if (hi <= lo) return 0.0;
  int64_t nonlocal = 0;
  for (int f = 0; f < spec.fragments; ++f) {
    const int64_t b0 =
        f == 0 ? std::numeric_limits<int64_t>::min()
               : spec.bounds[static_cast<size_t>(f)];
    const int64_t b1 =
        f == spec.fragments - 1
            ? std::numeric_limits<int64_t>::max()
            : spec.bounds[static_cast<size_t>(f) + 1];
    const int64_t o0 = std::max(lo, b0);
    const int64_t o1 = std::min(hi, b1);
    if (o1 <= o0) continue;
    const std::vector<int>& hosts = spec.HostsOf(f);
    if (std::find(hosts.begin(), hosts.end(), node) == hosts.end()) {
      nonlocal += o1 - o0;
    }
  }
  return static_cast<double>(nonlocal) / static_cast<double>(hi - lo);
}

}  // namespace

struct ClusterSim::SvpTicket {
  std::string original_sql;
  SvpPlan plan;
  // SVP: one slot per node. AVP: grows per chunk.
  std::vector<QueryResult> partials;
  std::vector<std::string> sub_sql;  // SVP only
  int remaining = 0;                 // SVP: nodes outstanding;
                                     // AVP: nodes still pumping chunks
  /// Serve from the modeled scramble (the global approx knob, or a
  /// stage-2 degrade for this request alone).
  bool approx = false;
  std::unique_ptr<AvpScheduler> avp;
  SimOutcome outcome;
  ReadFinish finish;
  uint64_t span = 0;          // sim.read, parent for the spans below
  uint64_t barrier_span = 0;  // sim.barrier_wait, open while queued
};

struct ClusterSim::WriteTicket {
  std::string sql;
  std::string target_table;  // for result-cache epoch bumps
  int remaining = 0;
  SimOutcome outcome;
  Callback done;
  uint64_t span = 0;  // sim.write
};

struct ClusterSim::ShareBatch {
  // Followers complete when the leader does, with the leader's
  // outcome (identical fingerprint = identical query = identical
  // result, so coalescing cannot change any client's bits).
  std::vector<std::pair<SimOutcome, ReadFinish>> followers;
};

ClusterSim::ClusterSim(const tpch::TpchData& data, ClusterSimOptions options)
    : options_(options),
      catalog_(tpch::MakeTpchCatalog(data, options.key_headroom)),
      balancer_(options.num_nodes, options.policy) {
  // Derive the paper-like buffer-pool size when unspecified: the full
  // fact table must miss on one node while a 1/4 partition fits.
  engine::Database probe(engine::DatabaseOptions{.buffer_pool_pages = 0});
  Status s = data.LoadInto(&probe);
  (void)s;
  size_t lineitem_pages =
      (*probe.catalog()->GetTable("lineitem"))->num_pages();
  size_t orders_pages = (*probe.catalog()->GetTable("orders"))->num_pages();
  pool_pages_ = options.buffer_pool_pages != 0
                    ? options.buffer_pool_pages
                    : std::max<size_t>(
                          64, (lineitem_pages + orders_pages) * 30 / 100);

  replicas_ = std::make_unique<cjdbc::ReplicaSet>(
      options.num_nodes,
      cjdbc::ReplicaSet::NodeOptions{.buffer_pool_pages = pool_pages_});
  s = data.LoadIntoReplicas(replicas_.get());
  (void)s;
  const int exec_threads = options.exec_threads > 0
                               ? options.exec_threads
                               : engine::DefaultExecThreads();
  for (int i = 0; i < options.num_nodes; ++i) {
    replicas_->node(i)->settings()->exec_threads = exec_threads;
    replicas_->node(i)->settings()->enable_join_parallel =
        options.join_parallel;
  }
  if (options_.fragmentation) {
    // Shared-nothing overlay: the TPC-H preset, co-partitioning
    // lineitem and orders on the orderkey over this cluster.
    Status fs = tpch::ApplyTpchFragmentationPreset(
        &catalog_, options_.num_nodes, options_.replica_factor,
        options_.fragments);
    (void)fs;  // preset tables always belong to the registered space
  }
  rewriter_ = std::make_unique<SvpRewriter>(&catalog_);
  for (int i = 0; i < options.num_nodes; ++i) {
    servers_.push_back(
        std::make_unique<sim::SimServer>(&sim_, options.node_mpl));
  }
  if (options.result_cache) {
    result_cache_ =
        std::make_unique<share::ResultCache>(options.result_cache_entries);
  }
  if (options_.admission) {
    admission::AdmissionController::Options adm;
    adm.enabled = true;
    adm.default_slo_us = options_.admission_slo_us;
    adm.default_priority = options_.admission_priority;
    adm.max_inflight = options_.admission_max_inflight > 0
                           ? options_.admission_max_inflight
                           : options_.num_nodes * options_.node_mpl;
    adm.queue_limit = options_.admission_queue_limit;
    adm.allow_degrade = options_.admission_degrade;
    adm.allow_shed = options_.admission_shed;
    adm.window_base_us =
        static_cast<int64_t>(options_.admission_window_us);
    adm.window_max_us =
        std::max<int64_t>(2'000, adm.window_base_us * 10);
    admission_ =
        std::make_unique<admission::AdmissionController>(adm);
  }
  if (options_.trace) {
    obs::Tracer& tracer = obs::Tracer::Global();
    tracer.SetClock([this] { return static_cast<int64_t>(sim_.now()); });
    tracer.SetEnabled(true);
  }
}

ClusterSim::~ClusterSim() {
  if (options_.trace) {
    // Fold the protocol counters into the registry so the traced
    // benches' metrics dump has the numbers (they accumulate across
    // simulated configurations in one process).
    obs::Registry& reg = obs::Registry::Global();
    reg.GetCounter("sim.svp_queries")->Add(svp_queries_);
    reg.GetCounter("sim.passthrough_reads")->Add(passthrough_reads_);
    reg.GetCounter("sim.writes_completed")->Add(writes_completed_);
    reg.GetCounter("sim.svp_barrier_waits")->Add(svp_barrier_waits_);
    reg.GetCounter("sim.writes_blocked")->Add(writes_blocked_count_);
    reg.GetCounter("sim.stale_svp_queries")->Add(stale_svp_queries_);
    reg.GetCounter("sim.avp_chunks")->Add(avp_chunks_);
    reg.GetCounter("sim.avp_steals")->Add(avp_steals_);
    reg.GetCounter("sim.result_cache_hits")->Add(result_cache_hits_);
    reg.GetCounter("sim.queries_coalesced")->Add(queries_coalesced_);
    reg.GetCounter("sim.routed_writes")->Add(routed_writes_);
    reg.GetCounter("sim.exchange_bytes")->Add(exchange_bytes_);
    reg.GetCounter("sim.fragments_pruned")->Add(fragments_pruned_);
    if (admission_) {
      const auto c = admission_->counters();
      reg.GetCounter("sim.admission_degraded")->Add(c.degraded);
      reg.GetCounter("sim.admission_shed")->Add(c.shed + c.cancelled);
    }
    // Restore the steady clock; leave the tracer enabled so span
    // trees recorded in virtual time stay dumpable after the sim is
    // gone.
    obs::Tracer::Global().SetClock(nullptr);
  }
}

std::vector<int> ClusterSim::PendingCounts() const {
  std::vector<int> out;
  out.reserve(servers_.size());
  for (const auto& s : servers_) out.push_back(s->pending());
  return out;
}

SimTime ClusterSim::node_busy_time(int i) const {
  return servers_[static_cast<size_t>(i)]->busy_time();
}

SimTime ClusterSim::Scaled(int node, SimTime t) const {
  if (options_.node_speed_factors.empty()) return t;
  double f = options_.node_speed_factors[static_cast<size_t>(node)];
  return static_cast<SimTime>(static_cast<double>(t) * f);
}

bool ClusterSim::ReplicasConverged() const {
  uint64_t first = replicas_->node(0)->transaction_counter();
  for (int i = 1; i < options_.num_nodes; ++i) {
    if (replicas_->node(i)->transaction_counter() != first) return false;
  }
  return true;
}

void ClusterSim::SubmitRead(const std::string& sql, Callback done) {
  SubmitRead(sql, ReadTag{}, std::move(done));
}

void ClusterSim::SubmitRead(const std::string& sql, const ReadTag& tag,
                            Callback done) {
  SimOutcome outcome;
  outcome.submitted = sim_.now();
  ReadFinish finish = [done = std::move(done)](
                          const SimOutcome& o, const QueryResult*) {
    if (done) done(o);
  };
  if (!admission_) {
    SubmitReadFront(sql, outcome, std::move(finish), options_.approx);
    return;
  }
  // Admission ladder first: the sim mirror of the controller's
  // ExecuteAdmitted, in virtual time. The release callback runs
  // inline (fast path) or inside a completing read's event.
  admission::AdmissionController::Request request;
  request.priority = tag.priority;
  request.slo_us = tag.slo_us;
  request.tenant = tag.tenant;
  if (options_.admission_degrade && !options_.approx) {
    auto parsed = sql::ParseSelect(sql);
    request.degradable = parsed.ok() && !(*parsed)->approx;
  }
  admission_->Submit(
      request, static_cast<int64_t>(sim_.now()),
      [this, sql, outcome,
       finish](const admission::AdmissionController::Ticket& ticket) mutable {
        if (ticket.shed()) {
          // Stage 3: the rejection still costs the client one message
          // round trip before the retryable error lands.
          outcome.shed = true;
          sim_.After(options_.cost.message_us,
                     [this, outcome, finish]() mutable {
                       outcome.completed = sim_.now();
                       outcome.status = Status::Overloaded(
                           "admission control shed the query; retry later");
                       finish(outcome, nullptr);
                     });
          return;
        }
        ReadFinish wrapped =
            [this, ticket, finish](const SimOutcome& o,
                                   const QueryResult* r) {
              admission_->OnComplete(ticket,
                                     static_cast<int64_t>(sim_.now()),
                                     o.status.ok());
              finish(o, r);
            };
        if (ticket.degraded()) {
          // Stage 2: this read alone runs on the approx tier, and —
          // like the global approx knob — bypasses the sharing front
          // end so a sampled answer never fills the exact cache.
          SimOutcome degraded = outcome;
          degraded.degraded = true;
          SubmitReadCore(sql, degraded, std::move(wrapped), std::nullopt,
                         /*approx=*/true);
          return;
        }
        SubmitReadFront(sql, outcome, std::move(wrapped),
                        options_.approx);
      });
}

void ClusterSim::SubmitReadFront(const std::string& sql,
                                 SimOutcome outcome, ReadFinish finish,
                                 bool approx) {
  if (approx || (!options_.result_cache && !options_.share_scans)) {
    // Approx mode bypasses the sharing front end: a modeled-sample
    // answer must never fill the (exact) result cache or feed a
    // coalesced follower.
    SubmitReadCore(sql, outcome, std::move(finish), std::nullopt, approx);
    return;
  }

  // Work-sharing front end — the sim mirror of the controller's
  // admission gate. Non-SELECT reads bypass it entirely.
  auto tables = share::ReadTableSet(sql);
  if (!tables.has_value()) {
    SubmitReadCore(sql, outcome, std::move(finish), std::nullopt,
                   /*approx=*/false);
    return;
  }
  const std::string fingerprint = share::NormalizeSql(sql);
  const uint64_t affinity = share::FingerprintHash(fingerprint);

  if (result_cache_) {
    if (auto hit = result_cache_->Lookup(fingerprint, catalog_.version())) {
      // Served from the controller: one message round-trip, no node.
      ++result_cache_hits_;
      sim_.After(options_.cost.message_us,
                 [this, outcome, hit, finish]() mutable {
                   outcome.completed = sim_.now();
                   obs::Tracer::Global().Record(
                       "sim.cache_hit", "sim", 0, outcome.submitted,
                       outcome.completed);
                   finish(outcome, hit.get());
                 });
      return;
    }
  }

  if (!options_.share_scans) {
    // Cache-only mode: solo execution under a fill ticket.
    SubmitReadCore(sql, outcome,
                   WithCacheFill(sql, fingerprint, std::move(finish)),
                   affinity, /*approx=*/false);
    return;
  }

  // Admission batching: identical fingerprints arriving within the
  // window ride one execution.
  auto it = open_shares_.find(fingerprint);
  if (it != open_shares_.end()) {
    ++queries_coalesced_;
    obs::Tracer::Global().Record("sim.coalesced", "sim", 0, sim_.now(),
                                 sim_.now());
    it->second->followers.emplace_back(outcome, std::move(finish));
    return;
  }
  auto batch = std::make_shared<ShareBatch>();
  open_shares_[fingerprint] = batch;
  // Stage 1 of the admission ladder: under overload the controller
  // widens the window so more arrivals coalesce into this batch.
  const SimTime window =
      admission_ ? static_cast<SimTime>(admission_->window_us())
                 : options_.admission_window_us;
  sim_.After(window,
             [this, sql, fingerprint, affinity, outcome, batch,
              finish = std::move(finish)] {
               open_shares_.erase(fingerprint);
               ReadFinish fan_out =
                   [batch, finish](const SimOutcome& o,
                                   const QueryResult* r) {
                     finish(o, r);
                     for (auto& [fo, ff] : batch->followers) {
                       fo.completed = o.completed;
                       fo.status = o.status;
                       fo.used_svp = o.used_svp;
                       ff(fo, r);
                     }
                   };
               SubmitReadCore(sql, outcome,
                              WithCacheFill(sql, fingerprint,
                                            std::move(fan_out)),
                              affinity, /*approx=*/false);
             });
}

ClusterSim::ReadFinish ClusterSim::WithCacheFill(
    const std::string& sql, const std::string& fingerprint,
    ReadFinish finish) {
  if (!result_cache_) return finish;
  auto tables = share::ReadTableSet(sql);
  if (!tables.has_value()) return finish;
  // Epochs snapshot BEFORE execution: a write overlapping the read
  // rejects the fill inside Insert.
  share::ResultCache::FillTicket ticket = result_cache_->BeginFill(
      fingerprint, catalog_.version(), *tables, writes_completed_);
  return [this, ticket = std::move(ticket), finish = std::move(finish)](
             const SimOutcome& o, const QueryResult* r) {
    if (r != nullptr && o.status.ok()) {
      result_cache_->Insert(ticket,
                            std::make_shared<QueryResult>(*r));
    }
    finish(o, r);
  };
}

void ClusterSim::SubmitReadCore(const std::string& sql, SimOutcome outcome,
                                ReadFinish finish,
                                std::optional<uint64_t> affinity,
                                bool approx) {
  obs::Tracer& tracer = obs::Tracer::Global();
  const uint64_t read_span =
      tracer.Open("sim.read", "sim", 0, outcome.submitted);
  if (read_span != 0) {
    finish = [read_span, finish = std::move(finish)](
                 const SimOutcome& o, const QueryResult* r) {
      obs::Tracer::Global().Close(read_span, o.completed);
      finish(o, r);
    };
  }

  if (options_.enable_intra_query) {
    auto parsed = sql::ParseSelect(sql);
    if (parsed.ok() && rewriter_->TouchesFactTable(**parsed)) {
      auto plan = rewriter_->Rewrite(**parsed);
      if (plan.ok()) {
        auto ticket = std::make_shared<SvpTicket>();
        ticket->original_sql = sql;
        ticket->plan = std::move(plan).value();
        ticket->outcome = outcome;
        ticket->outcome.used_svp = true;
        ticket->approx = approx;
        ticket->finish = std::move(finish);
        ticket->span = read_span;
        if (options_.replication == ReplicationMode::kEager &&
            writes_in_flight_ > 0) {
          // Consistency barrier: wait for in-flight writes to land on
          // every replica before dispatching sub-queries.
          ++svp_barrier_waits_;
          ticket->barrier_span = tracer.Open("sim.barrier_wait", "sim",
                                             read_span, sim_.now());
          waiting_svp_.push_back(std::move(ticket));
        } else {
          if (options_.replication == ReplicationMode::kLazy &&
              !ReplicasConverged()) {
            ++stale_svp_queries_;  // reading unequal replicas
          }
          DispatchIntraQuery(std::move(ticket));
        }
        return;
      }
      // Not rewritable: fall through to the inter-query path.
    }
  }

  // Inter-query path: the C-JDBC load balancer picks one node.
  ++passthrough_reads_;
  int node = balancer_.Choose(PendingCounts(), affinity);
  tracer.AddAttrTo(read_span, "node", static_cast<int64_t>(node));
  auto shared_finish = std::make_shared<ReadFinish>(std::move(finish));
  auto shared_outcome = std::make_shared<SimOutcome>(outcome);
  auto res = std::make_shared<Result<QueryResult>>(QueryResult{});
  servers_[static_cast<size_t>(node)]->Enqueue(sim::SimServer::Job{
      [this, node, sql, res, shared_outcome] {
        *res = replicas_->ExecuteOn(node, sql);
        shared_outcome->status = res->status();
        if (res->ok()) feedback_.Observe((*res)->stats);
        return Scaled(node,
                      res->ok() ? options_.cost.StatementTime((*res)->stats)
                                : options_.cost.message_us);
      },
      [shared_finish, shared_outcome, res](SimTime t) {
        shared_outcome->completed = t;
        if (*shared_finish) {
          (*shared_finish)(*shared_outcome,
                           res->ok() ? &**res : nullptr);
        }
      }});
}

void ClusterSim::DispatchIntraQuery(std::shared_ptr<SvpTicket> ticket) {
  ++svp_queries_;
  if (ticket->barrier_span != 0) {
    obs::Tracer::Global().Close(ticket->barrier_span, sim_.now());
    ticket->barrier_span = 0;
  }
  if (options_.intra_mode == IntraQueryMode::kAvp &&
      !options_.fragmentation) {
    // AVP's range stealing assumes any node can serve any chunk; the
    // fragmentation overlay pins data, so it falls back to fragmented
    // SVP dispatch (mirroring the real stack).
    DispatchAvp(std::move(ticket));
  } else {
    DispatchSvp(std::move(ticket));
  }
  // Sub-queries dispatched: blocked writes may now proceed (updates
  // overlap sub-query execution, per the paper).
  while (!blocked_writes_.empty()) {
    auto w = std::move(blocked_writes_.front());
    blocked_writes_.pop_front();
    DispatchWrite(std::move(w));
  }
}

void ClusterSim::DispatchSvp(std::shared_ptr<SvpTicket> ticket) {
  const int n = options_.num_nodes;
  auto intervals = ticket->plan.MakeIntervals(n);

  // Fragmentation overlay: drop intervals the key predicate proves
  // empty (their partials are additive identities, so composition is
  // unchanged), then serve each survivor at the owning fragment's
  // primary host. Any key span whose fragment does not host the
  // serving node is shipped there by the exchange operator, charged
  // per byte.
  const FragmentationSpec* frag = nullptr;
  if (options_.fragmentation) {
    for (const auto& t : ticket->plan.fact_tables()) {
      if (const FragmentationSpec* s = catalog_.FragmentationFor(t)) {
        frag = s;
        break;
      }
    }
  }
  std::vector<int> serving;
  std::vector<double> nonlocal;
  if (frag != nullptr) {
    const int64_t pmin = ticket->plan.pred_min();
    const int64_t pmax = ticket->plan.pred_max();
    std::vector<std::pair<int64_t, int64_t>> kept;
    for (const auto& [lo, hi] : intervals) {
      if (lo < hi && lo <= pmax && hi - 1 >= pmin) kept.emplace_back(lo, hi);
    }
    if (kept.empty()) kept.push_back(intervals.front());  // composer needs a feed
    fragments_pruned_ += intervals.size() - kept.size();
    intervals = std::move(kept);
    for (const auto& [lo, hi] : intervals) {
      const int node = frag->HostsOf(frag->FragmentOf(lo)).front();
      serving.push_back(node);
      nonlocal.push_back(NonLocalFraction(*frag, node, lo, hi));
    }
  } else {
    serving.resize(intervals.size());
    std::iota(serving.begin(), serving.end(), 0);
    nonlocal.assign(intervals.size(), 0.0);
  }

  // Approximate tier (mirrors ApuamaEngine::ExecuteApproxPlan): carve
  // 4n sub-queries so the early exit has prefixes to stop between,
  // round-robin them over the nodes, and charge each one
  // sample_ratio of its exact scan cost. The stop point is the CLT
  // scaling made deterministic: the relative half-width after j of
  // n_sub sub-queries is h(j) = h_full * sqrt(n_sub / j), with the
  // full-scramble width h_full itself shrinking as 1 / sqrt(ratio).
  double time_scale = 1.0;
  if (ticket->approx && frag == nullptr) {
    const int n_sub = 4 * n;
    intervals = ticket->plan.MakeIntervals(n_sub);
    int keep = n_sub;
    if (options_.error_target > 0.0) {
      const double h_full =
          kSimFullScrambleHalfWidth /
          std::sqrt(std::max(1e-6, options_.sample_ratio));
      const double ratio_sq = (h_full / options_.error_target) *
                              (h_full / options_.error_target);
      keep = static_cast<int>(
          std::ceil(static_cast<double>(n_sub) * ratio_sq));
      keep = std::max(1, std::min(n_sub, keep));
    }
    ++approx_queries_;
    if (keep < n_sub) ++approx_early_exits_;
    approx_subqueries_skipped_ += static_cast<uint64_t>(n_sub - keep);
    intervals.resize(static_cast<size_t>(keep));
    serving.clear();
    nonlocal.assign(intervals.size(), 0.0);
    for (size_t i = 0; i < intervals.size(); ++i) {
      serving.push_back(static_cast<int>(i) % n);
    }
    time_scale = options_.sample_ratio;
  }

  const int m = static_cast<int>(intervals.size());
  ticket->sub_sql.clear();
  for (const auto& [lo, hi] : intervals) {
    ticket->sub_sql.push_back(ticket->plan.SubquerySql(lo, hi));
  }
  ticket->partials.resize(static_cast<size_t>(m));
  ticket->remaining = m;

  for (int k = 0; k < m; ++k) {
    const int node = serving[static_cast<size_t>(k)];
    const double ship_frac = nonlocal[static_cast<size_t>(k)];
    auto started = std::make_shared<SimTime>(0);
    servers_[static_cast<size_t>(node)]->Enqueue(sim::SimServer::Job{
        [this, ticket, k, node, ship_frac, time_scale, started] {
          *started = sim_.now();
          engine::Database* db = replicas_->node(node);
          const bool saved = db->settings()->enable_seqscan;
          if (options_.force_index_for_svp) {
            db->settings()->enable_seqscan = false;
          }
          auto r = db->Execute(ticket->sub_sql[static_cast<size_t>(k)]);
          db->settings()->enable_seqscan = saved;
          if (r.ok()) {
            feedback_.Observe(r->stats);
            SimTime t = static_cast<SimTime>(
                static_cast<double>(options_.cost.StatementTime(r->stats)) *
                time_scale);
            if (ship_frac > 0.0) {
              const uint64_t bytes =
                  static_cast<uint64_t>(
                      static_cast<double>(r->stats.tuples_scanned) *
                      ship_frac) *
                  kExchangeRowBytes;
              exchange_bytes_ += bytes;
              t += options_.cost.ExchangeTransferTime(bytes);
            }
            ticket->partials[static_cast<size_t>(k)] = std::move(r).value();
            return Scaled(node, t);
          }
          ticket->outcome.status = r.status();
          return Scaled(node, options_.cost.message_us);
        },
        [this, ticket, node, started](SimTime t) {
          obs::Tracer& tracer = obs::Tracer::Global();
          uint64_t sid = tracer.Record("sim.subquery", "sim", ticket->span,
                                       *started, t);
          tracer.AddAttrTo(sid, "node", static_cast<int64_t>(node));
          if (--ticket->remaining > 0) return;
          ComposeAndFinish(ticket);
        }});
  }
}

void ClusterSim::DispatchAvp(std::shared_ptr<SvpTicket> ticket) {
  const int n = options_.num_nodes;
  // Cardinality feedback: size the first chunks to the observed
  // pipeline. A vectorized/filter-heavy pipeline does less work per
  // key, so the divisor shrinks and the scheduler starts with larger
  // chunks (less per-chunk message overhead before the adaptive
  // feedback loop takes over).
  AvpOptions avp = options_.avp;
  avp.initial_divisor =
      options_.cost.AdaptedAvpDivisor(avp.initial_divisor, feedback_);
  ticket->avp = std::make_unique<AvpScheduler>(
      n, ticket->plan.domain_min(), ticket->plan.domain_max(), avp);
  ticket->remaining = n;  // nodes still pumping chunks
  for (int i = 0; i < n; ++i) {
    StartAvpChunk(ticket, i);
  }
}

void ClusterSim::StartAvpChunk(std::shared_ptr<SvpTicket> ticket,
                               int node) {
  auto chunk = ticket->avp->NextChunk(node);
  if (!chunk.has_value()) {
    if (--ticket->remaining == 0) {
      avp_chunks_ += static_cast<uint64_t>(ticket->avp->chunks_issued());
      avp_steals_ += static_cast<uint64_t>(ticket->avp->steals());
      ComposeAndFinish(ticket);
    }
    return;
  }
  auto [lo, hi] = *chunk;
  const int64_t keys = hi - lo;
  auto started = std::make_shared<SimTime>(0);
  servers_[static_cast<size_t>(node)]->Enqueue(sim::SimServer::Job{
      [this, ticket, node, lo, hi, started] {
        *started = sim_.now();
        std::string sub = ticket->plan.SubquerySql(lo, hi);
        engine::Database* db = replicas_->node(node);
        const bool saved = db->settings()->enable_seqscan;
        if (options_.force_index_for_svp) {
          db->settings()->enable_seqscan = false;
        }
        auto r = db->Execute(sub);
        db->settings()->enable_seqscan = saved;
        if (r.ok()) {
          feedback_.Observe(r->stats);
          SimTime t = options_.cost.StatementTime(r->stats);
          ticket->partials.push_back(std::move(r).value());
          return Scaled(node, t);
        }
        ticket->outcome.status = r.status();
        return Scaled(node, options_.cost.message_us);
      },
      [this, ticket, node, keys, started](SimTime t) {
        obs::Tracer& tracer = obs::Tracer::Global();
        uint64_t sid = tracer.Record("sim.avp_chunk", "sim", ticket->span,
                                     *started, t);
        tracer.AddAttrTo(sid, "node", static_cast<int64_t>(node));
        ticket->avp->ReportChunkTime(node, keys, t - *started);
        StartAvpChunk(ticket, node);
      }});
}

void ClusterSim::ComposeAndFinish(std::shared_ptr<SvpTicket> ticket) {
  if (!ticket->outcome.status.ok()) {
    ticket->outcome.completed = sim_.now();
    if (ticket->finish) ticket->finish(ticket->outcome, nullptr);
    return;
  }
  std::vector<const QueryResult*> ptrs;
  ptrs.reserve(ticket->partials.size());
  for (const auto& p : ticket->partials) ptrs.push_back(&p);
  CompositionStats cstats;
  auto final_result = std::make_shared<Result<QueryResult>>(
      composer_.ComposeWithPlan(ptrs, ticket->plan, &cstats));
  ticket->outcome.status = final_result->status();
  SimTime compose_time =
      final_result->ok()
          ? options_.cost.CompositionTime(cstats.compose_exec,
                                          cstats.partial_rows)
          : 0;
  auto finish = ticket->finish;
  auto outcome = std::make_shared<SimOutcome>(ticket->outcome);
  const uint64_t parent_span = ticket->span;
  const SimTime compose_start = sim_.now();
  sim_.After(compose_time, [this, finish, outcome, final_result,
                            parent_span, compose_start] {
    outcome->completed = sim_.now();
    obs::Tracer::Global().Record("sim.compose", "sim", parent_span,
                                 compose_start, outcome->completed);
    if (finish) {
      finish(*outcome, final_result->ok() ? &**final_result : nullptr);
    }
  });
}

void ClusterSim::SubmitWrite(const std::string& sql, Callback done) {
  auto ticket = std::make_shared<WriteTicket>();
  ticket->sql = sql;
  ticket->outcome.submitted = sim_.now();
  ticket->done = std::move(done);
  ticket->span = obs::Tracer::Global().Open("sim.write", "sim", 0,
                                            ticket->outcome.submitted);
  if (options_.replication == ReplicationMode::kEager &&
      !waiting_svp_.empty()) {
    // An SVP query is preparing: new updates are blocked until its
    // sub-queries are dispatched.
    ++writes_blocked_count_;
    blocked_writes_.push_back(std::move(ticket));
    return;
  }
  DispatchWrite(std::move(ticket));
}

void ClusterSim::DispatchWrite(std::shared_ptr<WriteTicket> ticket) {
  const int n = options_.num_nodes;

  if (result_cache_) {
    // Admission bump: fills snapshotted before this point are
    // rejected; the completion bump below re-invalidates anything
    // filled while the write was applying.
    ticket->target_table = share::WriteTargetTable(ticket->sql);
    result_cache_->BeginTableWrite(ticket->target_table);
  }

  if (options_.replication == ReplicationMode::kLazy) {
    // Primary commit: the client returns once node 0 applied the
    // write; secondaries apply asynchronously after a propagation
    // delay (ordering preserved by FIFO node queues + event order).
    servers_[0]->Enqueue(sim::SimServer::Job{
        [this, ticket] {
          auto r = replicas_->ExecuteOn(0, ticket->sql);
          if (!r.ok()) ticket->outcome.status = r.status();
          return Scaled(0, r.ok() ? options_.cost.StatementTime(r->stats)
                                  : options_.cost.message_us);
        },
        [this, ticket](SimTime t) {
          ++writes_completed_;
          ticket->outcome.completed = t;
          write_latency_total_ += ticket->outcome.latency();
          obs::Tracer::Global().Close(ticket->span, t);
          if (result_cache_) {
            result_cache_->EndTableWrite(ticket->target_table);
          }
          if (ticket->done) ticket->done(ticket->outcome);
        }});
    for (int i = 1; i < n; ++i) {
      sim_.After(options_.lazy_propagation_delay_us, [this, ticket, i] {
        servers_[static_cast<size_t>(i)]->Enqueue(sim::SimServer::Job{
            [this, ticket, i] {
              auto r = replicas_->ExecuteOn(i, ticket->sql);
              return Scaled(i, r.ok()
                                   ? options_.cost.StatementTime(r->stats)
                                   : options_.cost.message_us);
            },
            [this, ticket](SimTime) {
              // Each secondary apply re-bumps: conservative (extra
              // invalidations), never stale (a fill racing any
              // replica's apply is rejected).
              if (result_cache_) {
                result_cache_->EndTableWrite(ticket->target_table);
              }
            }});
      });
    }
    return;
  }

  // Eager (the paper): broadcast + coordination. Replica-consistency
  // coordination: committing a write requires a total-order round
  // across the replicas that take it, and every participating node's
  // session is held for that round — so the per-node charge *grows
  // with the fan-out*. At full broadcast this is the mechanism behind
  // the paper's Fig. 4 stall at 16-32 nodes ("the consistency
  // protocol makes the update propagation delay hurt performance").
  // Under the fragmentation overlay a statically attributable write
  // routes to the owning fragment's replica set, so the sync round
  // spans replica_factor nodes regardless of cluster size; the
  // remaining replicas receive the forwarded statement as a
  // background apply (full copies stay converged — the overlay is
  // logical) that costs node busy time but neither sync overhead nor
  // client latency. FIFO node queues order every background apply
  // before any read enqueued after the commit, so results stay exact.
  std::optional<std::vector<int>> routed;
  if (options_.fragmentation) routed = RoutedWriteTargets(ticket->sql);
  std::vector<int> owners;
  if (routed.has_value()) {
    owners = *routed;
    ++routed_writes_;
  } else {
    owners.resize(static_cast<size_t>(n));
    std::iota(owners.begin(), owners.end(), 0);
  }
  write_fanout_total_ += owners.size();
  ++writes_in_flight_;
  ticket->remaining = static_cast<int>(owners.size());
  SimTime sync =
      options_.cost.WriteBroadcastOverhead(static_cast<int>(owners.size()));
  for (int i : owners) {
    servers_[static_cast<size_t>(i)]->Enqueue(sim::SimServer::Job{
        [this, ticket, i, sync] {
          auto r = replicas_->ExecuteOn(i, ticket->sql);
          if (!r.ok()) ticket->outcome.status = r.status();
          return Scaled(i, (r.ok() ? options_.cost.StatementTime(r->stats)
                                   : options_.cost.message_us) +
                               sync);
        },
        [this, ticket](SimTime t) {
          if (--ticket->remaining > 0) return;
          --writes_in_flight_;
          ++writes_completed_;
          ticket->outcome.completed = t;
          write_latency_total_ += ticket->outcome.latency();
          obs::Tracer::Global().Close(ticket->span, t);
          if (result_cache_) {
            // Completion bump: after this, no lookup can return a
            // result computed before the write.
            result_cache_->EndTableWrite(ticket->target_table);
          }
          if (ticket->done) ticket->done(ticket->outcome);
          MaybeReleaseBarrier();
        }});
  }
  if (!routed.has_value()) return;
  for (int i = 0; i < n; ++i) {
    if (std::find(owners.begin(), owners.end(), i) != owners.end()) {
      continue;
    }
    servers_[static_cast<size_t>(i)]->Enqueue(sim::SimServer::Job{
        [this, ticket, i] {
          auto r = replicas_->ExecuteOn(i, ticket->sql);
          return Scaled(i, r.ok() ? options_.cost.StatementTime(r->stats)
                                  : options_.cost.message_us);
        },
        [](SimTime) {}});
  }
}

std::optional<std::vector<int>> ClusterSim::RoutedWriteTargets(
    const std::string& sql) const {
  const std::string table = share::WriteTargetTable(sql);
  if (table.empty()) return std::nullopt;
  const FragmentationSpec* spec = catalog_.FragmentationFor(table);
  if (spec == nullptr) return std::nullopt;
  auto parsed = sql::Parse(sql);
  if (!parsed.ok()) return std::nullopt;
  std::vector<int64_t> written_keys;
  switch ((*parsed)->kind()) {
    case sql::StmtKind::kInsert: {
      const auto& ins = static_cast<const sql::InsertStmt&>(**parsed);
      int pos = -1;
      if (!ins.columns.empty()) {
        for (size_t i = 0; i < ins.columns.size(); ++i) {
          if (ToLower(ins.columns[i]) == spec->key_column) {
            pos = static_cast<int>(i);
            break;
          }
        }
      } else {
        auto t = replicas_->node(0)->catalog()->GetTable(spec->table);
        if (t.ok()) pos = (*t)->schema().FindColumn(spec->key_column);
      }
      if (pos < 0) return std::nullopt;
      for (const auto& row : ins.rows) {
        if (static_cast<size_t>(pos) >= row.size()) return std::nullopt;
        const sql::Expr* e = row[static_cast<size_t>(pos)].get();
        if (e->kind != sql::ExprKind::kLiteral ||
            e->literal.type() != ValueType::kInt64) {
          return std::nullopt;  // not statically attributable
        }
        written_keys.push_back(e->literal.int_val());
      }
      break;
    }
    case sql::StmtKind::kDelete: {
      const auto& del = static_cast<const sql::DeleteStmt&>(**parsed);
      auto key = EqualityKey(del.where.get(), spec->key_column);
      if (!key.has_value()) return std::nullopt;
      written_keys.push_back(*key);
      break;
    }
    case sql::StmtKind::kUpdate: {
      const auto& upd = static_cast<const sql::UpdateStmt&>(**parsed);
      for (const auto& [col, expr] : upd.assignments) {
        // Rewriting the key could migrate the row: never route.
        if (ToLower(col) == spec->key_column) return std::nullopt;
      }
      auto key = EqualityKey(upd.where.get(), spec->key_column);
      if (!key.has_value()) return std::nullopt;
      written_keys.push_back(*key);
      break;
    }
    default:
      return std::nullopt;
  }
  if (written_keys.empty()) return std::nullopt;
  std::vector<int> targets;
  for (int64_t k : written_keys) {
    for (int h : spec->HostsOf(spec->FragmentOf(k))) {
      if (std::find(targets.begin(), targets.end(), h) == targets.end()) {
        targets.push_back(h);
      }
    }
  }
  std::sort(targets.begin(), targets.end());
  if (static_cast<int>(targets.size()) >= options_.num_nodes) {
    return std::nullopt;  // full fan-out anyway: plain broadcast
  }
  return targets;
}

void ClusterSim::MaybeReleaseBarrier() {
  if (writes_in_flight_ > 0) return;
  while (!waiting_svp_.empty()) {
    auto t = std::move(waiting_svp_.front());
    waiting_svp_.pop_front();
    DispatchIntraQuery(std::move(t));
  }
}

SimOutcome ClusterSim::RunToCompletion(const std::string& sql,
                                       bool is_write) {
  SimOutcome result;
  bool fired = false;
  auto cb = [&](const SimOutcome& o) {
    result = o;
    fired = true;
  };
  if (is_write) {
    SubmitWrite(sql, cb);
  } else {
    SubmitRead(sql, cb);
  }
  sim_.Run();
  if (!fired) result.status = Status::Internal("query never completed");
  return result;
}

Result<SimTime> ClusterSim::MeasureIsolated(const std::string& sql,
                                            int reps) {
  if (reps < 2) reps = 2;
  SimTime total = 0;
  for (int i = 0; i < reps; ++i) {
    SimOutcome o = RunToCompletion(sql);
    APUAMA_RETURN_NOT_OK(o.status);
    if (i > 0) total += o.latency();  // discard the cold first run
  }
  return total / (reps - 1);
}

}  // namespace apuama::workload

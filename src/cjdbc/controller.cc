#include "cjdbc/controller.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <set>

#include "apuama/share/query_fingerprint.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "sql/parser.h"

namespace apuama::cjdbc {

namespace {

int64_t SteadyUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Cheap detection of "EXPLAIN ANALYZE ..." without lexing: decides
// whether to activate the per-request timeline before classification.
// False positives are harmless (an inert timeline on the stack);
// normal queries fail the first keyword compare immediately.
bool IsExplainAnalyzeText(const std::string& sql) {
  size_t i = 0;
  auto skip_ws = [&] {
    while (i < sql.size() &&
           std::isspace(static_cast<unsigned char>(sql[i]))) {
      ++i;
    }
  };
  auto match_kw = [&](const char* kw) {
    size_t n = std::strlen(kw);
    if (sql.size() - i < n) return false;
    for (size_t k = 0; k < n; ++k) {
      if (std::toupper(static_cast<unsigned char>(sql[i + k])) != kw[k]) {
        return false;
      }
    }
    i += n;
    return true;
  };
  skip_ws();
  if (!match_kw("EXPLAIN")) return false;
  size_t before = i;
  skip_ws();
  if (i == before) return false;  // EXPLAINANALYZE is not the verb
  return match_kw("ANALYZE");
}

}  // namespace

RequestKind ClassifyStmt(const sql::Stmt& stmt) {
  switch (stmt.kind()) {
    case sql::StmtKind::kSelect:
    case sql::StmtKind::kExplain:
      return RequestKind::kRead;
    case sql::StmtKind::kInsert:
    case sql::StmtKind::kDelete:
    case sql::StmtKind::kUpdate:
      return RequestKind::kWrite;
    case sql::StmtKind::kCreateTable:
    case sql::StmtKind::kCreateIndex:
    case sql::StmtKind::kDropTable:
    case sql::StmtKind::kAlterFragment:
    case sql::StmtKind::kCreateSample:
    case sql::StmtKind::kDropSample:
      return RequestKind::kDdl;
    case sql::StmtKind::kSet:
    case sql::StmtKind::kBegin:
    case sql::StmtKind::kCommit:
    case sql::StmtKind::kRollback:
      return RequestKind::kControl;
  }
  return RequestKind::kControl;  // unreachable: all kinds enumerated
}

Result<RequestKind> ClassifyRequest(const std::string& sql) {
  APUAMA_ASSIGN_OR_RETURN(sql::StmtPtr stmt, sql::Parse(sql));
  return ClassifyStmt(*stmt);
}

std::vector<std::pair<std::string, uint64_t>> ControllerStats::Kv() const {
  auto v = [](const std::atomic<uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  return {{"reads", v(reads)},
          {"writes", v(writes)},
          {"broadcast_statements", v(broadcast_statements)},
          {"routed_writes", v(routed_writes)},
          {"failovers", v(failovers)},
          {"recovered_statements", v(recovered_statements)},
          {"result_cache_hits", v(result_cache_hits)},
          {"queries_coalesced", v(queries_coalesced)},
          {"shared_batches", v(shared_batches)},
          {"admission_queue_wait_us", v(admission_queue_wait_us)},
          {"admission_degraded", v(admission_degraded)},
          {"admission_shed", v(admission_shed)}};
}

std::string ControllerStats::ToString() const {
  return obs::RenderKvText(Kv());
}

Controller::Controller(std::unique_ptr<Driver> driver, BalancePolicy policy)
    : driver_(std::move(driver)),
      balancer_(driver_->num_nodes(), policy) {
  backends_.resize(static_cast<size_t>(driver_->num_nodes()));
  for (int i = 0; i < driver_->num_nodes(); ++i) {
    auto conn = driver_->Connect(i);
    if (conn.ok()) {
      backends_[static_cast<size_t>(i)].conn = std::move(conn).value();
    } else {
      backends_[static_cast<size_t>(i)].enabled = false;
    }
  }
  sharing_ = driver_->work_sharing();
  share::ScanShareManager::Options gate_options;
  if (sharing_ != nullptr) {
    gate_options.window_us = sharing_->admission_window_us();
  }
  gate_ = std::make_unique<share::ScanShareManager>(gate_options);
  gate_window_base_us_ = gate_options.window_us;
  admission::AdmissionController::Options adm_options;
  // Off until `SET admission = on`: the read path stays bit-identical
  // to the pre-admission controller.
  adm_options.enabled = false;
  // Dispatch capacity ≈ what the replicas absorb concurrently: two
  // requests per backend keeps every node busy while one waits.
  adm_options.max_inflight = std::max(2, driver_->num_nodes() * 2);
  adm_options.window_base_us = gate_window_base_us_;
  adm_options.window_max_us = std::max<int64_t>(
      2'000, gate_window_base_us_ * 10);
  admission_ = std::make_unique<admission::AdmissionController>(adm_options);
  metrics_provider_ = obs::Registry::Global().RegisterProvider(
      "controller", [this] { return stats_.Kv(); });
}

Result<engine::QueryResult> Controller::Execute(const std::string& sql) {
  // Parse once: classification, the admission ladder's degradability
  // check, and knob interception all read the same statement.
  APUAMA_ASSIGN_OR_RETURN(sql::StmtPtr stmt, sql::Parse(sql));
  const RequestKind kind = ClassifyStmt(*stmt);
  obs::Tracer& tracer = obs::Tracer::Global();
  switch (kind) {
    case RequestKind::kRead: {
      scheduler_.NoteRead();
      stats_.reads.fetch_add(1, std::memory_order_relaxed);
      obs::Span span = tracer.StartSpan("controller.read", "controller");
      // Admission off = the exact pre-scheduler read path, untouched.
      auto run = [&]() -> Result<engine::QueryResult> {
        if (admission_->enabled()) return ExecuteAdmitted(sql, *stmt);
        return ExecuteRead(sql);
      };
      if (IsExplainAnalyzeText(sql)) {
        // EXPLAIN ANALYZE: give the layers below a timeline to stamp
        // (admission wait) — it lives on this stack frame and the
        // whole request runs on this thread.
        obs::RequestTimeline timeline;
        obs::TimelineScope scope(&timeline);
        return run();
      }
      return run();
    }
    case RequestKind::kWrite: {
      obs::Span span = tracer.StartSpan("controller.write", "controller");
      // Ask the driver where this write must land BEFORE taking the
      // write ticket (routing only parses; no backend work).
      std::optional<std::vector<int>> targets = driver_->RouteWrite(sql);
      uint64_t seq = 0;
      Scheduler::WriteTicket ticket = scheduler_.BeginWrite(&seq);
      stats_.writes.fetch_add(1, std::memory_order_relaxed);
      if (targets.has_value() &&
          targets->size() < static_cast<size_t>(num_backends())) {
        stats_.routed_writes.fetch_add(1, std::memory_order_relaxed);
      }
      return ExecuteBroadcast(sql, targets);
    }
    case RequestKind::kDdl: {
      obs::Span span = tracer.StartSpan("controller.ddl", "controller");
      uint64_t seq = 0;
      Scheduler::WriteTicket ticket = scheduler_.BeginWrite(&seq);
      return ExecuteBroadcast(sql);
    }
    case RequestKind::kControl:
      // Session control is broadcast so all replicas stay in step;
      // admission knobs also steer the middleware scheduler itself.
      MaybeApplyAdmissionKnob(*stmt);
      return ExecuteBroadcast(sql);
  }
  return Status::Internal("unreachable");
}

Result<engine::QueryResult> Controller::ExecuteRead(const std::string& sql) {
  if (sharing_ != nullptr &&
      (sharing_->sharing_enabled() || sharing_->cache_enabled())) {
    return ExecuteSharedRead(sql);
  }
  return ExecuteReadDirect(sql, std::nullopt);
}

Result<engine::QueryResult> Controller::ExecuteAdmitted(
    const std::string& sql, const sql::Stmt& stmt) {
  admission::AdmissionController::Request request;
  // Stage 2 eligibility: a plain SELECT the client asked exact.
  // EXPLAIN stays exact (its output shape is the contract) and an
  // explicit APPROX query has nothing left to shed.
  request.degradable =
      stmt.kind() == sql::StmtKind::kSelect &&
      !static_cast<const sql::SelectStmt&>(stmt).approx;
  admission::AdmissionController::Ticket ticket;
  {
    // Block until the ladder rules: inline on the fast path, from a
    // completing request's thread when this one queued.
    std::mutex mu;
    std::condition_variable cv;
    bool ready = false;
    admission_->Submit(
        request, SteadyUs(),
        [&](const admission::AdmissionController::Ticket& t) {
          std::lock_guard<std::mutex> lock(mu);
          ticket = t;
          ready = true;
          cv.notify_one();
        });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return ready; });
  }
  stats_.admission_queue_wait_us.fetch_add(
      static_cast<uint64_t>(std::max<int64_t>(0, ticket.queue_wait_us())),
      std::memory_order_relaxed);
  auto stamp_timeline = [&](bool degraded) {
    if (obs::CurrentTimeline() == nullptr) return;
    const auto c = admission_->counters();
    obs::NoteAdmissionOutcome(ticket.queue_wait_us(), degraded,
                              static_cast<int64_t>(c.shed + c.cancelled));
  };
  if (ticket.shed()) {
    stats_.admission_shed.fetch_add(1, std::memory_order_relaxed);
    obs::Tracer::Global().Instant("admission.shed", "controller");
    stamp_timeline(false);
    return Status::Overloaded(
        "admission control shed the query (priority " +
        std::to_string(ticket.priority) + "); retry later");
  }
  // Stage 1: hand the ladder's window to the scan-share gate so the
  // next batch coalesces more under overload.
  gate_->set_window_us(ticket.window_us);
  Result<engine::QueryResult> result = Status::OK();
  if (ticket.degraded()) {
    stats_.admission_degraded.fetch_add(1, std::memory_order_relaxed);
    obs::Tracer::Global().Instant("admission.degrade", "controller");
    // Degraded answers bypass the sharing front end: an approximate
    // result must never fill the exact-result cache or answer for an
    // exact batch member. (The node falls back to exact execution by
    // itself when no scramble covers the query.)
    result = ExecuteReadDirect("APPROX " + sql, std::nullopt);
    if (result.ok()) result->approx.degraded = true;
  } else {
    result = ExecuteRead(sql);
  }
  admission_->OnComplete(ticket, SteadyUs(), result.ok());
  stamp_timeline(ticket.degraded());
  return result;
}

void Controller::MaybeApplyAdmissionKnob(const sql::Stmt& stmt) {
  if (stmt.kind() != sql::StmtKind::kSet) return;
  const auto& set = static_cast<const sql::SetStmt&>(stmt);
  std::string name = set.name;
  for (char& c : name) c = static_cast<char>(std::tolower(
                               static_cast<unsigned char>(c)));
  if (name == "admission") {
    std::string value = set.value;
    for (char& c : value) c = static_cast<char>(std::tolower(
                                  static_cast<unsigned char>(c)));
    if (value == "on" || value == "true" || value == "1") {
      admission_->set_enabled(true);
    } else if (value == "off" || value == "false" || value == "0") {
      admission_->set_enabled(false);
      // Restore the configured window so disabled means byte-for-byte
      // pre-admission behavior, whatever the ladder last chose.
      gate_->set_window_us(gate_window_base_us_);
    }
    return;  // bad value: the node's own ExecuteSet reports it
  }
  if (name != "slo_target_us" && name != "priority" &&
      name != "admission_queue_limit") {
    return;
  }
  char* end = nullptr;
  const long long v = std::strtoll(set.value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || set.value.empty()) return;
  if (name == "slo_target_us" && v >= 1 && v <= 1'000'000'000) {
    admission_->set_default_slo_us(static_cast<int64_t>(v));
  } else if (name == "priority" && v >= 0 && v <= 7) {
    admission_->set_default_priority(static_cast<int>(v));
  } else if (name == "admission_queue_limit" && v >= 1 && v <= 1'000'000) {
    admission_->set_queue_limit(static_cast<int>(v));
  }
}

Result<engine::QueryResult> Controller::ExecuteReadDirect(
    const std::string& sql, std::optional<uint64_t> affinity) {
  // Admission wait = time to obtain a backend slot. Only measured
  // when an EXPLAIN ANALYZE timeline is active (one thread-local read
  // on the normal path).
  obs::RequestTimeline* tl = obs::CurrentTimeline();
  const int64_t admit_t0 = (tl != nullptr) ? SteadyUs() : 0;
  int node = balancer_.Acquire(affinity);
  if (tl != nullptr) obs::NoteAdmissionWait(SteadyUs() - admit_t0);
  obs::Tracer::Global().Instant("balancer.acquire", "controller", "node",
                                node);
  if (!backends_[static_cast<size_t>(node)].enabled) {
    // Balancer picked a disabled backend: fail over to the first
    // enabled one, bypassing balancer bookkeeping for this request.
    balancer_.Release(node);
    for (int i = 0; i < num_backends(); ++i) {
      if (backends_[static_cast<size_t>(i)].enabled) {
        return backends_[static_cast<size_t>(i)].conn->Execute(sql);
      }
    }
    return Status::Unavailable("no backend available");
  }
  auto result = backends_[static_cast<size_t>(node)].conn->Execute(sql);
  balancer_.Release(node);
  return result;
}

Result<engine::QueryResult> Controller::ExecuteSharedRead(
    const std::string& sql) {
  auto tables = share::ReadTableSet(sql);
  if (!tables.has_value()) {
    return ExecuteReadDirect(sql, std::nullopt);
  }
  const std::string fingerprint = share::NormalizeSql(sql);
  const uint64_t affinity = share::FingerprintHash(fingerprint);
  // Cache hits are served immediately — no window, no backend.
  if (sharing_->cache_enabled()) {
    if (auto hit = sharing_->CacheLookup(fingerprint)) {
      stats_.result_cache_hits.fetch_add(1, std::memory_order_relaxed);
      obs::Tracer::Global().Instant("cache.hit", "share");
      return *hit;
    }
  }
  if (!sharing_->sharing_enabled()) {
    // Cache-only mode: solo execution under a fill ticket (the ticket
    // snapshots write epochs BEFORE the read runs, so a racing write
    // rejects the fill).
    auto ticket = sharing_->CacheBeginFill(fingerprint, *tables);
    auto result = ExecuteReadDirect(sql, affinity);
    if (result.ok() && ticket.has_value()) {
      sharing_->CacheInsert(
          *ticket, std::make_shared<engine::QueryResult>(*result));
    }
    return result;
  }
  // Admission gate: rendezvous with concurrent reads over the same
  // table set. Non-leaders block until the leader publishes.
  std::string group;
  for (const auto& t : *tables) group += t + ",";
  auto admission = gate_->Admit(group, fingerprint, sql);
  if (!admission.leader) {
    sharing_->NoteCoalesced(1);
    stats_.queries_coalesced.fetch_add(1, std::memory_order_relaxed);
    obs::Tracer::Global().Instant("gate.coalesced", "share");
    return gate_->Await(admission);
  }
  obs::Span window_span =
      obs::Tracer::Global().StartSpan("gate.window", "share");
  std::vector<std::string> batch = gate_->WaitWindow(admission);
  window_span.End();
  std::vector<Result<engine::QueryResult>> results =
      ExecuteGateBatch(batch, affinity);
  if (batch.size() > 1) {
    stats_.shared_batches.fetch_add(1, std::memory_order_relaxed);
    obs::Tracer::Global().Instant("gate.batch", "share", "size",
                                  static_cast<int64_t>(batch.size()));
  }
  Result<engine::QueryResult> own = results[admission.index];
  gate_->Publish(admission, std::move(results));
  return own;
}

std::vector<Result<engine::QueryResult>> Controller::ExecuteGateBatch(
    const std::vector<std::string>& sqls, uint64_t affinity) {
  // Snapshot cache epochs per entry before anything executes.
  std::vector<std::optional<share::ResultCache::FillTicket>> tickets(
      sqls.size());
  if (sharing_->cache_enabled()) {
    for (size_t i = 0; i < sqls.size(); ++i) {
      if (auto tables = share::ReadTableSet(sqls[i])) {
        tickets[i] = sharing_->CacheBeginFill(
            share::NormalizeSql(sqls[i]), *tables);
      }
    }
  }
  std::vector<Result<engine::QueryResult>> results;
  int node = balancer_.Acquire(affinity);
  if (!backends_[static_cast<size_t>(node)].enabled) {
    balancer_.Release(node);
    int fallback = -1;
    for (int i = 0; i < num_backends(); ++i) {
      if (backends_[static_cast<size_t>(i)].enabled) {
        fallback = i;
        break;
      }
    }
    if (fallback < 0) {
      for (size_t i = 0; i < sqls.size(); ++i) {
        results.push_back(Status::Unavailable("no backend available"));
      }
      return results;
    }
    results = backends_[static_cast<size_t>(fallback)].conn->ExecuteShared(
        sqls);
  } else {
    results = backends_[static_cast<size_t>(node)].conn->ExecuteShared(sqls);
    balancer_.Release(node);
  }
  for (size_t i = 0; i < results.size() && i < tickets.size(); ++i) {
    if (results[i].ok() && tickets[i].has_value()) {
      sharing_->CacheInsert(
          *tickets[i], std::make_shared<engine::QueryResult>(*results[i]));
    }
  }
  return results;
}

Result<engine::QueryResult> Controller::ExecuteBroadcast(
    const std::string& sql,
    const std::optional<std::vector<int>>& targets) {
  // Append to the recovery log first: disabled (or newly failing)
  // backends will replay from here when they rejoin. Caller holds the
  // write ticket, so the log order IS the replica write order.
  size_t log_index;
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    recovery_log_.push_back(
        LogEntry{sql, targets.value_or(std::vector<int>{})});
    log_index = recovery_log_.size();
  }
  auto is_target = [&](int node_id) {
    if (!targets.has_value()) return true;
    for (int t : *targets) {
      if (t == node_id) return true;
    }
    return false;
  };
  engine::QueryResult last;
  bool any = false;
  Status first_error = Status::OK();
  int node_id = -1;
  for (auto& b : backends_) {
    ++node_id;
    if (!b.enabled) continue;
    if (!is_target(node_id)) {
      // Routed write: this backend does not host the touched
      // fragment. It is up to date with respect to this log entry
      // without executing anything.
      b.applied_up_to = log_index;
      continue;
    }
    auto r = b.conn->Execute(sql);
    if (r.ok()) {
      last = std::move(r).value();
      b.applied_up_to = log_index;
      any = true;
      stats_.broadcast_statements.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (r.status().code() == StatusCode::kUnavailable) {
      // Failure detection: drop the backend from rotation; the write
      // succeeds on the survivors and the log covers the rejoin.
      b.enabled = false;
      stats_.failovers.fetch_add(1, std::memory_order_relaxed);
      obs::Tracer::Global().Instant("backend.failover", "controller");
      continue;
    }
    if (first_error.ok()) first_error = r.status();
  }
  APUAMA_RETURN_NOT_OK(first_error);
  if (!any) return Status::Unavailable("no backend available");
  return last;
}

void Controller::SetBackendEnabled(int node_id, bool enabled) {
  if (node_id >= 0 && node_id < num_backends()) {
    backends_[static_cast<size_t>(node_id)].enabled = enabled;
  }
}

bool Controller::IsBackendEnabled(int node_id) const {
  if (node_id < 0 || node_id >= num_backends()) return false;
  return backends_[static_cast<size_t>(node_id)].enabled;
}

Status Controller::RecoverBackend(int node_id) {
  if (node_id < 0 || node_id >= num_backends()) {
    return Status::InvalidArgument("bad node id");
  }
  Backend& b = backends_[static_cast<size_t>(node_id)];
  // Hold the write order while replaying so no new broadcast
  // interleaves with recovery (C-JDBC quiesces writes the same way).
  uint64_t seq = 0;
  Scheduler::WriteTicket ticket = scheduler_.BeginWrite(&seq);
  size_t target;
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    target = recovery_log_.size();
  }
  while (b.applied_up_to < target) {
    LogEntry entry;
    {
      std::lock_guard<std::mutex> lock(log_mu_);
      entry = recovery_log_[b.applied_up_to];
    }
    bool applies = entry.targets.empty();
    for (int t : entry.targets) {
      if (t == node_id) applies = true;
    }
    if (applies) {
      APUAMA_RETURN_NOT_OK(
          b.conn->ExecuteRecovery(entry.sql, !entry.targets.empty())
              .status());
      stats_.recovered_statements.fetch_add(1, std::memory_order_relaxed);
    }
    ++b.applied_up_to;
  }
  b.enabled = true;
  return Status::OK();
}

}  // namespace apuama::cjdbc

// Physical fragmentation overlay: catalog units, DDL plumbing,
// fragment-routed writes, exchange-driven reads, cache scoping, and
// bit-identity against the fully replicated baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "apuama/apuama_engine.h"
#include "apuama/data_catalog.h"
#include "cjdbc/controller.h"
#include "common/rng.h"
#include "sql/parser.h"
#include "sql/unparse.h"
#include "tests/test_util.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "tpch/refresh.h"
#include "tpch/tpch_catalog.h"
#include "workload/cluster_sim.h"

namespace apuama {
namespace {

using engine::QueryResult;
using testutil::ExpectResultsIdentical;

// ---------------------------------------------------------------------------
// Catalog units
// ---------------------------------------------------------------------------

TEST(FragmentationCatalogTest, KeyIntervalsCoverDomainExactly) {
  auto iv = KeyIntervals(1, 10, 3);
  ASSERT_EQ(iv.size(), 3u);
  EXPECT_EQ(iv.front().first, 1);
  EXPECT_EQ(iv.back().second, 11);  // [lo, hi) covers inclusive max
  for (size_t i = 1; i < iv.size(); ++i) {
    EXPECT_EQ(iv[i].first, iv[i - 1].second);  // contiguous
    EXPECT_LT(iv[i].first, iv[i].second);      // non-empty
  }
}

DataCatalog MakeToyCatalog() {
  DataCatalog catalog;
  VirtualPartitionSpace space;
  space.name = "k";
  space.members.push_back({"fact", "key"});
  space.min_value = 1;
  space.max_value = 100;
  EXPECT_TRUE(catalog.RegisterSpace(std::move(space)).ok());
  return catalog;
}

TEST(FragmentationCatalogTest, FragmentOfClampsOutOfRangeKeys) {
  DataCatalog catalog = MakeToyCatalog();
  FragmentationSpec spec;
  spec.table = "fact";
  spec.key_column = "key";
  spec.fragments = 4;
  ASSERT_TRUE(catalog.SetFragmentation(std::move(spec), 4).ok());
  const FragmentationSpec* f = catalog.FragmentationFor("fact");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->FragmentOf(1), 0);
  EXPECT_EQ(f->FragmentOf(100), 3);
  EXPECT_EQ(f->FragmentOf(-50), 0);    // below domain: edge fragment
  EXPECT_EQ(f->FragmentOf(10000), 3);  // above domain: edge fragment
  // Intersects matches FragmentOf's open-ended edges.
  EXPECT_TRUE(f->Intersects(0, -100, -90));
  EXPECT_TRUE(f->Intersects(3, 5000, 6000));
  EXPECT_FALSE(f->Intersects(1, 5000, 6000));
}

TEST(FragmentationCatalogTest, NaturalPlacementSpreadsReplicas) {
  DataCatalog catalog = MakeToyCatalog();
  FragmentationSpec spec;
  spec.table = "fact";
  spec.key_column = "key";
  spec.fragments = 4;
  spec.replica_factor = 2;
  ASSERT_TRUE(catalog.SetFragmentation(std::move(spec), 4).ok());
  const FragmentationSpec* f = catalog.FragmentationFor("fact");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(f->placement.size(), 4u);
  for (int frag = 0; frag < 4; ++frag) {
    ASSERT_EQ(f->HostsOf(frag).size(), 2u);
    EXPECT_EQ(f->HostsOf(frag)[0], frag);            // primary = natural
    EXPECT_EQ(f->HostsOf(frag)[1], (frag + 1) % 4);  // replica follows
  }
  const uint64_t before = catalog.version();
  ASSERT_TRUE(catalog.ClearFragmentation("fact").ok());
  EXPECT_EQ(catalog.FragmentationFor("fact"), nullptr);
  EXPECT_GT(catalog.version(), before);  // DDL keys the caches
}

TEST(FragmentationCatalogTest, NonMemberColumnRejected) {
  DataCatalog catalog = MakeToyCatalog();
  FragmentationSpec spec;
  spec.table = "fact";
  spec.key_column = "other";  // not the VPA
  spec.fragments = 2;
  EXPECT_FALSE(catalog.SetFragmentation(std::move(spec), 2).ok());
  spec = FragmentationSpec{};
  spec.table = "unknown";
  spec.key_column = "key";
  spec.fragments = 2;
  EXPECT_FALSE(catalog.SetFragmentation(std::move(spec), 2).ok());
}

// ---------------------------------------------------------------------------
// Full-stack fixture
// ---------------------------------------------------------------------------

struct Stack {
  std::unique_ptr<cjdbc::ReplicaSet> replicas;
  std::unique_ptr<ApuamaEngine> engine;
  std::unique_ptr<cjdbc::Controller> controller;
};

Stack MakeStack(const tpch::TpchData& data, int nodes,
                ApuamaOptions options = ApuamaOptions{},
                int64_t headroom = 0) {
  Stack s;
  s.replicas = std::make_unique<cjdbc::ReplicaSet>(
      nodes, cjdbc::ReplicaSet::NodeOptions{.buffer_pool_pages = 0});
  EXPECT_TRUE(data.LoadIntoReplicas(s.replicas.get()).ok());
  s.engine = std::make_unique<ApuamaEngine>(
      s.replicas.get(), tpch::MakeTpchCatalog(data, headroom), options);
  s.controller = std::make_unique<cjdbc::Controller>(
      std::make_unique<ApuamaDriver>(s.engine.get()));
  return s;
}

void FragmentBoth(cjdbc::Controller* c, int fragments, int replica) {
  for (const char* t : {"lineitem", "orders"}) {
    std::string key = t[0] == 'l' ? "l_orderkey" : "o_orderkey";
    auto r = c->Execute("alter table " + std::string(t) +
                        " fragment by hash(" + key + ") into " +
                        std::to_string(fragments) + " replica " +
                        std::to_string(replica));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
}

// ---------------------------------------------------------------------------
// DDL plumbing
// ---------------------------------------------------------------------------

TEST(FragmentationDdlTest, AlterInstallsSpecAndUnfragmentClears) {
  const tpch::TpchData data(tpch::DbgenOptions{.scale_factor = 0.001});
  Stack s = MakeStack(data, 4);
  FragmentBoth(s.controller.get(), 4, 2);
  const FragmentationSpec* spec =
      s.engine->data_catalog()->FragmentationFor("lineitem");
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->fragments, 4);
  EXPECT_EQ(spec->replica_factor, 2);
  EXPECT_EQ(spec->key_column, "l_orderkey");
  EXPECT_TRUE(s.engine->fragmentation_active());

  auto r = s.controller->Execute("alter table lineitem unfragment");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(s.engine->data_catalog()->FragmentationFor("lineitem"), nullptr);
  ASSERT_TRUE(s.controller->Execute("alter table orders unfragment").ok());
  EXPECT_FALSE(s.engine->fragmentation_active());
}

TEST(FragmentationDdlTest, BadDdlRejected) {
  const tpch::TpchData data(tpch::DbgenOptions{.scale_factor = 0.001});
  Stack s = MakeStack(data, 2);
  // Wrong key column (not the table's VPA).
  EXPECT_FALSE(s.controller
                   ->Execute("alter table lineitem fragment by "
                             "hash(l_partkey) into 2")
                   .ok());
  // Unknown table.
  EXPECT_FALSE(s.controller
                   ->Execute("alter table nope fragment by hash(x) into 2")
                   .ok());
  EXPECT_FALSE(s.engine->fragmentation_active());
}

// ---------------------------------------------------------------------------
// Fragment-routed writes
// ---------------------------------------------------------------------------

TEST(RoutedWriteTest, WritesRouteToReplicaSetAndStayReadable) {
  const tpch::TpchData data(tpch::DbgenOptions{.scale_factor = 0.001});
  Stack s = MakeStack(data, 4, ApuamaOptions{}, /*headroom=*/2000);

  // Baseline broadcast write: fan-out is the whole cluster.
  auto stream = tpch::MakeRefreshStream(data.max_orderkey() + 1, 4, 7);
  ASSERT_TRUE(s.controller->Execute(stream[0].sql).ok());
  EXPECT_EQ(s.engine->stats().routed_writes.load(), 0u);
  EXPECT_EQ(s.engine->stats().write_fanout_total.load(), 4u);

  FragmentBoth(s.controller.get(), 4, 2);

  // Routed writes: each statement lands on the owning fragment's
  // replica set (2 nodes), not all 4.
  const uint64_t fanout_before = s.engine->stats().write_fanout_total.load();
  uint64_t routed_statements = 0;
  for (size_t i = 1; i < stream.size(); ++i) {
    auto r = s.controller->Execute(stream[i].sql);
    ASSERT_TRUE(r.ok()) << stream[i].sql << ": " << r.status().ToString();
    ++routed_statements;
  }
  EXPECT_EQ(s.engine->stats().routed_writes.load(), routed_statements);
  EXPECT_EQ(s.engine->stats().write_fanout_total.load(),
            fanout_before + 2 * routed_statements);

  // The inserted-then-deleted stream leaves no rows behind, and the
  // fragmented read path finds exactly the surviving inserts midway:
  // re-run inserts only and count them back through the controller.
  auto stream2 = tpch::MakeRefreshStream(data.max_orderkey() + 100, 2, 11);
  int64_t first_key = 0;
  for (const auto& st : stream2) {
    if (!st.is_insert) break;
    if (first_key == 0) first_key = st.orderkey;
    ASSERT_TRUE(s.controller->Execute(st.sql).ok());
  }
  auto r = s.controller->Execute(
      "select count(*) as c from orders where o_orderkey >= " +
      std::to_string(first_key));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].int_val(), 2);
}

TEST(RoutedWriteTest, KeyRewritingUpdateIsNeverRouted) {
  const tpch::TpchData data(tpch::DbgenOptions{.scale_factor = 0.001});
  Stack s = MakeStack(data, 4);
  FragmentBoth(s.controller.get(), 4, 1);
  const uint64_t routed_before = s.engine->stats().routed_writes.load();
  // Rewriting the fragmentation key could migrate the row: broadcast.
  ASSERT_TRUE(s.controller
                  ->Execute("update orders set o_orderkey = 1 "
                            "where o_orderkey = 1")
                  .ok());
  EXPECT_EQ(s.engine->stats().routed_writes.load(), routed_before);
  // A non-key update pinned by a key equality routes.
  ASSERT_TRUE(s.controller
                  ->Execute("update orders set o_shippriority = 0 "
                            "where o_orderkey = 1")
                  .ok());
  EXPECT_EQ(s.engine->stats().routed_writes.load(), routed_before + 1);
}

// ---------------------------------------------------------------------------
// Bit-identity against the replicated baseline
// ---------------------------------------------------------------------------

/// Injects a conjunct on the lineitem partition key ahead of the
/// query's GROUP BY — every fuzzed query references lineitem, so the
/// reference is always in scope.
std::string WithKeyPredicate(const std::string& sql, int64_t lo,
                             int64_t hi) {
  const std::string inject = " and l_orderkey >= " + std::to_string(lo) +
                             " and l_orderkey <= " + std::to_string(hi);
  size_t pos = sql.find(" group by");
  EXPECT_NE(pos, std::string::npos) << sql;
  std::string out = sql;
  out.insert(pos, inject);
  return out;
}

/// Rotates the FROM list by `shift` and unparses — join order must
/// not change any result bit on either execution path.
std::string WithFromRotation(const std::string& sql, size_t shift) {
  auto parsed = sql::ParseSelect(sql);
  EXPECT_TRUE(parsed.ok()) << sql;
  sql::SelectStmt* stmt = parsed->get();
  if (stmt->from.size() > 1) {
    std::rotate(stmt->from.begin(),
                stmt->from.begin() +
                    static_cast<long>(shift % stmt->from.size()),
                stmt->from.end());
  }
  return sql::UnparseSelect(*stmt);
}

TEST(FragmentationIdentityTest, FuzzedReadsMatchReplicatedBaseline) {
  const tpch::TpchData data(tpch::DbgenOptions{.scale_factor = 0.001});
  Rng rng(0xF4A6);
  const int queries[] = {3, 5, 10, 12};
  for (int nodes : {2, 4}) {
    Stack baseline = MakeStack(data, nodes);
    Stack frag = MakeStack(data, nodes);
    FragmentBoth(frag.controller.get(), nodes, 2);
    for (int threads : {1, 2, 8}) {
      const std::string set_threads =
          "set exec_threads = " + std::to_string(threads);
      ASSERT_TRUE(baseline.controller->Execute(set_threads).ok());
      ASSERT_TRUE(frag.controller->Execute(set_threads).ok());
      for (int q : queries) {
        const std::string base_sql = *tpch::QuerySql(q);
        const int64_t a =
            rng.Uniform(data.min_orderkey(), data.max_orderkey());
        const int64_t b =
            rng.Uniform(data.min_orderkey(), data.max_orderkey());
        std::vector<std::string> variants = {
            base_sql,
            WithKeyPredicate(base_sql, std::min(a, b), std::max(a, b)),
            WithFromRotation(base_sql,
                             static_cast<size_t>(rng.Uniform(1, 4))),
        };
        for (const std::string& v : variants) {
          auto expect = baseline.controller->Execute(v);
          ASSERT_TRUE(expect.ok()) << v << ": "
                                   << expect.status().ToString();
          auto got = frag.controller->Execute(v);
          ASSERT_TRUE(got.ok()) << v << ": " << got.status().ToString();
          ExpectResultsIdentical(*expect, *got);
        }
      }
    }
  }
}

TEST(FragmentationIdentityTest, MisalignedFragmentsExchangeAndMatch) {
  const tpch::TpchData data(tpch::DbgenOptions{.scale_factor = 0.001});
  Stack baseline = MakeStack(data, 4);
  Stack frag = MakeStack(data, 4);
  // 3 fragments over 4 nodes: SVP intervals cross fragment
  // boundaries, so reads must move data through the exchange.
  FragmentBoth(frag.controller.get(), 3, 1);
  for (const char* strategy : {"auto", "shuffle", "broadcast"}) {
    ASSERT_TRUE(frag.controller
                    ->Execute(std::string("set exchange_strategy = ") +
                              strategy)
                    .ok());
    for (int q : {1, 3, 12}) {
      const std::string sql = *tpch::QuerySql(q);
      auto expect = baseline.controller->Execute(sql);
      ASSERT_TRUE(expect.ok());
      auto got = frag.controller->Execute(sql);
      ASSERT_TRUE(got.ok()) << "Q" << q << " (" << strategy
                            << "): " << got.status().ToString();
      // Rematerialized exchange temps have their own page/morsel
      // layout, so double accumulation order inside a shipped slice
      // can differ in the last ULP — numerically equal, not
      // bit-identical. Strict identity is the aligned preset's
      // contract (FuzzedReadsMatchReplicatedBaseline).
      testutil::ExpectResultsEqual(*expect, *got);
    }
  }
  EXPECT_GT(frag.engine->stats().exchange_bytes.load(), 0u);
}

TEST(FragmentationIdentityTest, SetOffRestoresReplicatedPath) {
  const tpch::TpchData data(tpch::DbgenOptions{.scale_factor = 0.001});
  Stack baseline = MakeStack(data, 4);
  Stack frag = MakeStack(data, 4);
  FragmentBoth(frag.controller.get(), 4, 1);
  const std::string sql = *tpch::QuerySql(3);
  auto expect = baseline.controller->Execute(sql);
  ASSERT_TRUE(expect.ok());

  auto on = frag.controller->Execute(sql);
  ASSERT_TRUE(on.ok());
  ExpectResultsIdentical(*expect, *on);

  // No routed writes happened, so every replica still holds the full
  // copy: SET fragmentation off must restore the replicated plan
  // byte for byte.
  ASSERT_TRUE(frag.controller->Execute("set fragmentation = off").ok());
  EXPECT_FALSE(frag.engine->fragmentation_active());
  auto off = frag.controller->Execute(sql);
  ASSERT_TRUE(off.ok());
  ExpectResultsIdentical(*expect, *off);

  ASSERT_TRUE(frag.controller->Execute("set fragmentation = on").ok());
  EXPECT_TRUE(frag.engine->fragmentation_active());
}

// ---------------------------------------------------------------------------
// Cache scoping
// ---------------------------------------------------------------------------

TEST(FragmentationCacheTest, DdlInvalidatesCachedPlansAndResults) {
  const tpch::TpchData data(tpch::DbgenOptions{.scale_factor = 0.001});
  Stack baseline = MakeStack(data, 4);
  Stack s = MakeStack(data, 4);
  const std::string sql = *tpch::QuerySql(6);
  auto expect = baseline.controller->Execute(sql);
  ASSERT_TRUE(expect.ok());

  // Stale-plan regression: warm the plan cache, change the physical
  // layout under it, and require the re-planned execution to agree.
  ASSERT_TRUE(s.controller->Execute(sql).ok());
  const uint64_t hits_before = s.engine->stats().plan_cache_hits.load();
  auto cached = s.controller->Execute(sql);
  ASSERT_TRUE(cached.ok());
  EXPECT_GT(s.engine->stats().plan_cache_hits.load(), hits_before);

  // Fragmentation DDL bumps the catalog version: the cached plan
  // (compiled for the replicated layout) must miss, and the
  // re-planned fragmented execution must agree bit for bit.
  FragmentBoth(s.controller.get(), 4, 1);
  const uint64_t misses_before = s.engine->stats().plan_cache_misses.load();
  auto after_ddl = s.controller->Execute(sql);
  ASSERT_TRUE(after_ddl.ok());
  EXPECT_GT(s.engine->stats().plan_cache_misses.load(), misses_before);
  ExpectResultsIdentical(*expect, *after_ddl);

  // Same catalog-version keying protects the result cache: a cached
  // result from one layout is never served after the next DDL.
  ASSERT_TRUE(s.controller->Execute("set result_cache = on").ok());
  ASSERT_TRUE(s.controller->Execute(sql).ok());  // fill
  const uint64_t rc_hits = s.engine->stats().result_cache_hits.load();
  ASSERT_TRUE(s.controller->Execute(sql).ok());
  EXPECT_EQ(s.engine->stats().result_cache_hits.load(), rc_hits + 1);
  FragmentBoth(s.controller.get(), 2, 1);  // re-fragment INTO 2
  auto refreshed = s.controller->Execute(sql);
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ(s.engine->stats().result_cache_hits.load(), rc_hits + 1);
  ExpectResultsIdentical(*expect, *refreshed);
}

TEST(FragmentationCacheTest, WriteBumpsOnlyWrittenFragmentEpoch) {
  const tpch::TpchData data(tpch::DbgenOptions{.scale_factor = 0.001});
  ApuamaOptions options;
  options.enable_result_cache = true;
  Stack s = MakeStack(data, 4, options);
  FragmentBoth(s.controller.get(), 4, 1);
  const FragmentationSpec* spec =
      s.engine->data_catalog()->FragmentationFor("lineitem");
  ASSERT_NE(spec, nullptr);
  ASSERT_EQ(spec->bounds.size(), 5u);
  // A read pinned inside the LAST fragment's key range.
  const std::string read =
      "select sum(l_quantity) as q from lineitem where l_orderkey >= " +
      std::to_string(spec->bounds[3]) +
      " and l_orderkey <= " + std::to_string(spec->bounds[4] - 1);
  ASSERT_TRUE(s.controller->Execute(read).ok());  // fill
  const uint64_t hits0 = s.engine->stats().result_cache_hits.load();
  ASSERT_TRUE(s.controller->Execute(read).ok());
  EXPECT_EQ(s.engine->stats().result_cache_hits.load(), hits0 + 1);

  // A routed write into fragment 0 does not touch the read's
  // fragment: the cached entry survives.
  ASSERT_TRUE(s.controller
                  ->Execute("update lineitem set l_quantity = 1 "
                            "where l_orderkey = 1")
                  .ok());
  ASSERT_TRUE(s.controller->Execute(read).ok());
  EXPECT_EQ(s.engine->stats().result_cache_hits.load(), hits0 + 2);

  // A routed write into the read's own fragment invalidates it.
  const int64_t key_in_read = spec->bounds[3];
  ASSERT_TRUE(s.controller
                  ->Execute("update lineitem set l_quantity = 1 "
                            "where l_orderkey = " +
                            std::to_string(key_in_read))
                  .ok());
  ASSERT_TRUE(s.controller->Execute(read).ok());
  EXPECT_EQ(s.engine->stats().result_cache_hits.load(), hits0 + 2);
}

// ---------------------------------------------------------------------------
// Concurrency: single-fragment writers during shuffled joins
// ---------------------------------------------------------------------------

TEST(FragmentationStressTest, WritersOnDistinctFragmentsDuringShuffledJoins) {
  const tpch::TpchData data(tpch::DbgenOptions{.scale_factor = 0.001});
  Stack s = MakeStack(data, 4);
  // Misaligned fragmentation so reads exercise the exchange path
  // while the writers run.
  FragmentBoth(s.controller.get(), 3, 1);

  // Expected results captured up front; the writers below only
  // rewrite o_shippriority to its existing value, so reads must keep
  // returning exactly these bits throughout.
  const std::string q12 = *tpch::QuerySql(12);
  const std::string q3 = *tpch::QuerySql(3);
  auto expect12 = s.controller->Execute(q12);
  auto expect3 = s.controller->Execute(q3);
  ASSERT_TRUE(expect12.ok());
  ASSERT_TRUE(expect3.ok());

  const FragmentationSpec* spec =
      s.engine->data_catalog()->FragmentationFor("orders");
  ASSERT_NE(spec, nullptr);
  std::atomic<bool> failed{false};
  auto writer = [&](int fragment) {
    // All of one writer's keys stay inside one fragment.
    const int64_t key = spec->bounds[static_cast<size_t>(fragment)];
    for (int i = 0; i < 16 && !failed.load(); ++i) {
      auto r = s.controller->Execute(
          "update orders set o_shippriority = 0 where o_orderkey = " +
          std::to_string(key));
      if (!r.ok()) {
        failed = true;
        ADD_FAILURE() << r.status().ToString();
      }
    }
  };
  auto reader = [&](const std::string& sql, const QueryResult* expect) {
    for (int i = 0; i < 6 && !failed.load(); ++i) {
      auto r = s.controller->Execute(sql);
      if (!r.ok()) {
        failed = true;
        ADD_FAILURE() << r.status().ToString();
        return;
      }
      ExpectResultsIdentical(*expect, *r);
    }
  };
  std::thread w0(writer, 0), w1(writer, 1);
  std::thread r0(reader, q12, &*expect12), r1(reader, q3, &*expect3);
  w0.join();
  w1.join();
  r0.join();
  r1.join();
  EXPECT_GT(s.engine->stats().routed_writes.load(), 0u);
}

// ---------------------------------------------------------------------------
// Event-sim mirror
// ---------------------------------------------------------------------------

TEST(FragmentationSimTest, RoutedWritesShrinkFanoutAndConverge) {
  const tpch::TpchData data(tpch::DbgenOptions{.scale_factor = 0.001});
  workload::ClusterSimOptions opt;
  opt.num_nodes = 4;
  opt.fragmentation = true;
  opt.replica_factor = 1;
  opt.key_headroom = 2000;
  workload::ClusterSim sim(data, opt);
  auto stream = tpch::MakeRefreshStream(data.max_orderkey() + 1, 4, 3);
  for (const auto& st : stream) {
    auto o = sim.RunToCompletion(st.sql, /*is_write=*/true);
    ASSERT_TRUE(o.status.ok()) << st.sql << ": " << o.status.ToString();
  }
  EXPECT_EQ(sim.routed_writes(), stream.size());
  // Fan-out per routed write = replica factor, not cluster size.
  EXPECT_EQ(sim.write_fanout_total(), stream.size());
  // Background applies keep the full copies converged.
  EXPECT_TRUE(sim.ReplicasConverged());
}

TEST(FragmentationSimTest, PredicatePrunesIntervals) {
  const tpch::TpchData data(tpch::DbgenOptions{.scale_factor = 0.001});
  workload::ClusterSimOptions opt;
  opt.num_nodes = 4;
  opt.fragmentation = true;
  workload::ClusterSim sim(data, opt);
  const std::string sql =
      "select sum(l_quantity) as q from lineitem where l_orderkey <= " +
      std::to_string(data.min_orderkey() + 1);
  auto o = sim.RunToCompletion(sql);
  ASSERT_TRUE(o.status.ok()) << o.status.ToString();
  EXPECT_TRUE(o.used_svp);
  EXPECT_GT(sim.fragments_pruned(), 0u);  // only fragment 0 can match
}

TEST(FragmentationSimTest, MisalignedFragmentsChargeExchangeBytes) {
  const tpch::TpchData data(tpch::DbgenOptions{.scale_factor = 0.001});
  workload::ClusterSimOptions opt;
  opt.num_nodes = 4;
  opt.fragmentation = true;
  opt.fragments = 3;  // SVP intervals cross fragment boundaries
  workload::ClusterSim sim(data, opt);
  auto o = sim.RunToCompletion(*tpch::QuerySql(6));
  ASSERT_TRUE(o.status.ok()) << o.status.ToString();
  EXPECT_GT(sim.exchange_bytes(), 0u);

  // Aligned fragmentation ships nothing: co-partitioned local joins.
  workload::ClusterSimOptions aligned = opt;
  aligned.fragments = 0;
  workload::ClusterSim sim2(data, aligned);
  auto o2 = sim2.RunToCompletion(*tpch::QuerySql(6));
  ASSERT_TRUE(o2.status.ok());
  EXPECT_EQ(sim2.exchange_bytes(), 0u);
}

}  // namespace
}  // namespace apuama

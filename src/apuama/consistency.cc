#include "apuama/consistency.h"

#include <algorithm>
#include <cassert>

namespace apuama {

ConsistencyManager::ConsistencyManager(
    int num_nodes, std::function<bool(int)> node_relevant)
    : num_nodes_(num_nodes < 1 ? 1 : num_nodes),
      node_relevant_(std::move(node_relevant)),
      node_done_(static_cast<size_t>(num_nodes_), false),
      last_done_(static_cast<size_t>(num_nodes_), true) {}

bool ConsistencyManager::BroadcastComplete() const {
  for (int i = 0; i < num_nodes_; ++i) {
    if (node_done_[static_cast<size_t>(i)]) continue;
    // A node the controller cannot reach is not waited for.
    if (node_relevant_ && !node_relevant_(i)) continue;
    return false;
  }
  return true;
}

void ConsistencyManager::CloseBroadcastLocked() {
  write_open_ = false;
  last_stmt_ = std::move(open_stmt_);
  last_done_ = node_done_;
  open_stmt_.clear();
}

ConsistencyManager::WriteClass ConsistencyManager::BeginNodeWrite(
    int node, const std::string& statement) {
  std::unique_lock<std::mutex> lock(mu_);
  const size_t ni = static_cast<size_t>(node);
  if (write_open_ && statement == open_stmt_ && node >= 0 &&
      node < num_nodes_ && !node_done_[ni]) {
    ++nodes_executing_;
    return WriteClass::kContinuation;
  }
  if (!write_open_ && statement == last_stmt_ && node >= 0 &&
      node < num_nodes_ && !last_done_[ni]) {
    // Late statement of the previous broadcast (its node was
    // unreachable when the broadcast closed).
    ++nodes_executing_;
    return WriteClass::kTail;
  }
  // A new logical write: wait until no SVP dispatch is preparing and
  // the previous broadcast is fully applied.
  if (svp_preparing_ > 0) ++writes_blocked_;
  cv_.wait(lock, [this] { return svp_preparing_ == 0 && !write_open_; });
  write_open_ = true;
  open_stmt_ = statement;
  std::fill(node_done_.begin(), node_done_.end(), false);
  ++logical_writes_;
  ++nodes_executing_;
  return WriteClass::kNew;
}

bool ConsistencyManager::EndNodeWrite(int node, WriteClass cls) {
  bool closed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --nodes_executing_;
    if (node >= 0 && node < num_nodes_) {
      const size_t ni = static_cast<size_t>(node);
      if (cls == WriteClass::kTail) {
        last_done_[ni] = true;
      } else {
        node_done_[ni] = true;
      }
    }
    if (write_open_ && cls != WriteClass::kTail && BroadcastComplete()) {
      CloseBroadcastLocked();
      closed = true;
    }
  }
  cv_.notify_all();
  return closed;
}

void ConsistencyManager::BeginSvpPrepare(
    const std::function<bool()>& counters_equal) {
  std::unique_lock<std::mutex> lock(mu_);
  ++svp_preparing_;  // blocks new logical writes immediately
  if (write_open_ || nodes_executing_ > 0) ++svp_waits_;
  cv_.wait(lock, [this, &counters_equal] {
    return !write_open_ && nodes_executing_ == 0 &&
           (!counters_equal || counters_equal());
  });
}

void ConsistencyManager::EndSvpPrepare() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --svp_preparing_;
  }
  cv_.notify_all();
}

}  // namespace apuama
